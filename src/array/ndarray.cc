#include "array/ndarray.h"

#include "common/hash.h"
#include "common/random.h"
#include "common/strings.h"

namespace dslog {

NDArray::NDArray(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  int64_t n = 1;
  for (int64_t d : shape_) {
    DSLOG_CHECK(d >= 0) << "negative extent";
    n *= d;
  }
  data_.assign(static_cast<size_t>(n), 0.0);
  ComputeStrides();
}

void NDArray::ComputeStrides() {
  strides_.assign(shape_.size(), 1);
  for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i)
    strides_[static_cast<size_t>(i)] =
        strides_[static_cast<size_t>(i) + 1] * shape_[static_cast<size_t>(i) + 1];
}

NDArray NDArray::Full(std::vector<int64_t> shape, double value) {
  NDArray a(std::move(shape));
  for (auto& v : a.data_) v = value;
  return a;
}

NDArray NDArray::FromValues(std::vector<int64_t> shape, std::vector<double> values) {
  NDArray a;
  a.shape_ = std::move(shape);
  int64_t n = 1;
  for (int64_t d : a.shape_) n *= d;
  DSLOG_CHECK(n == static_cast<int64_t>(values.size()))
      << "shape/value size mismatch: " << n << " vs " << values.size();
  a.data_ = std::move(values);
  a.ComputeStrides();
  return a;
}

NDArray NDArray::Random(std::vector<int64_t> shape, Rng* rng) {
  NDArray a(std::move(shape));
  for (auto& v : a.data_) v = rng->NextDouble();
  return a;
}

NDArray NDArray::RandomInts(std::vector<int64_t> shape, int64_t lo, int64_t hi,
                            Rng* rng) {
  NDArray a(std::move(shape));
  for (auto& v : a.data_) v = static_cast<double>(rng->UniformRange(lo, hi));
  return a;
}

NDArray NDArray::Arange(int64_t n) {
  NDArray a({n});
  for (int64_t i = 0; i < n; ++i) a.data_[static_cast<size_t>(i)] = static_cast<double>(i);
  return a;
}

int64_t NDArray::FlatIndex(std::span<const int64_t> idx) const {
  DSLOG_DCHECK(idx.size() == shape_.size());
  int64_t flat = 0;
  for (size_t i = 0; i < idx.size(); ++i) {
    DSLOG_DCHECK(idx[i] >= 0 && idx[i] < shape_[i]);
    flat += idx[i] * strides_[i];
  }
  return flat;
}

void NDArray::UnravelIndex(int64_t flat, std::span<int64_t> idx) const {
  DSLOG_DCHECK(idx.size() == shape_.size());
  for (size_t i = 0; i < shape_.size(); ++i) {
    idx[i] = flat / strides_[i];
    flat %= strides_[i];
  }
}

uint64_t NDArray::ContentHash() const {
  uint64_t h = Hash64(shape_.data(), shape_.size() * sizeof(int64_t));
  h = HashCombine(h, Hash64(data_.data(), data_.size() * sizeof(double)));
  return h;
}

std::string NDArray::ShapeToString() const {
  return "(" + JoinInts(shape_, ",") + ")";
}

}  // namespace dslog
