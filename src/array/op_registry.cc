#include "array/op_registry.h"

#include <unordered_map>

#include "common/check.h"

namespace dslog {

const OpRegistry& OpRegistry::Global() {
  static OpRegistry* registry = [] {
    auto* r = new OpRegistry();
    RegisterElementwiseOps(r);
    RegisterReduceOps(r);
    RegisterLinalgOps(r);
    RegisterShapeOps(r);
    RegisterSelectOps(r);
    return r;
  }();
  return *registry;
}

const ArrayOp* OpRegistry::Find(const std::string& name) const {
  for (const auto& op : ops_)
    if (op->name() == name) return op.get();
  return nullptr;
}

std::vector<std::string> OpRegistry::AllNames() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& op : ops_) names.push_back(op->name());
  return names;
}

std::vector<std::string> OpRegistry::NamesByCategory(OpCategory category) const {
  std::vector<std::string> names;
  for (const auto& op : ops_)
    if (op->category() == category) names.push_back(op->name());
  return names;
}

std::vector<std::string> OpRegistry::UnaryPipelineNames() const {
  std::vector<std::string> names;
  for (const auto& op : ops_) {
    if (op->num_inputs() != 1) continue;
    // Probe with a representative 1-D and 2-D shape; pipeline generation
    // re-checks the actual shape at sampling time.
    if (op->SupportsUnaryShape({64}) || op->SupportsUnaryShape({8, 8}))
      names.push_back(op->name());
  }
  return names;
}

void OpRegistry::Register(std::unique_ptr<ArrayOp> op) {
  DSLOG_CHECK(Find(op->name()) == nullptr) << "duplicate op: " << op->name();
  ops_.push_back(std::move(op));
}

}  // namespace dslog
