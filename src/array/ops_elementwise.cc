// The 75 element-wise operations of the catalogue (Table IX "element"
// row): 42 unary math functions, 31 binary functions over same-shaped
// arrays, and 2 unary functions with scalar arguments (clip, nan_to_num).
// All have identity cell lineage: out[i...] <- in[i...].

#include <cmath>
#include <limits>

#include "array/op.h"
#include "array/op_registry.h"
#include "common/random.h"

namespace dslog {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ------------------------------------------------------------------ unary --

class UnaryElementwiseOp : public ArrayOp {
 public:
  UnaryElementwiseOp(std::string name, double (*fn)(double))
      : name_(std::move(name)), fn_(fn) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kElementwise; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    if (inputs.size() != 1)
      return Status::InvalidArgument(name_ + ": expects 1 input");
    const NDArray& x = *inputs[0];
    NDArray out(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) out[i] = fn_(x[i]);
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    if (inputs.size() != 1)
      return Status::InvalidArgument(name_ + ": expects 1 input");
    std::vector<LineageRelation> rels;
    rels.push_back(IdentityLineage(output, *inputs[0]));
    return rels;
  }

 private:
  std::string name_;
  double (*fn_)(double);
};

// ----------------------------------------------------------------- binary --

class BinaryElementwiseOp : public ArrayOp {
 public:
  BinaryElementwiseOp(std::string name, double (*fn)(double, double))
      : name_(std::move(name)), fn_(fn) {}

  const std::string& name() const override { return name_; }
  int num_inputs() const override { return 2; }
  OpCategory category() const override { return OpCategory::kElementwise; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs&) const override {
    if (inputs.size() != 2)
      return Status::InvalidArgument(name_ + ": expects 2 inputs");
    const NDArray& x = *inputs[0];
    const NDArray& y = *inputs[1];
    if (!x.SameShape(y))
      return Status::InvalidArgument(name_ + ": shape mismatch " +
                                     x.ShapeToString() + " vs " +
                                     y.ShapeToString());
    NDArray out(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) out[i] = fn_(x[i], y[i]);
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    if (inputs.size() != 2)
      return Status::InvalidArgument(name_ + ": expects 2 inputs");
    std::vector<LineageRelation> rels;
    rels.push_back(IdentityLineage(output, *inputs[0]));
    rels.push_back(IdentityLineage(output, *inputs[1]));
    return rels;
  }

 private:
  std::string name_;
  double (*fn_)(double, double);
};

// ------------------------------------------------- unary with scalar args --

class ClipOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "clip";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kElementwise; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs& args) const override {
    if (inputs.size() != 1) return Status::InvalidArgument("clip: 1 input");
    double lo = args.GetDoubleOr("a_min", 0.0);
    double hi = args.GetDoubleOr("a_max", 1.0);
    const NDArray& x = *inputs[0];
    NDArray out(x.shape());
    for (int64_t i = 0; i < x.size(); ++i)
      out[i] = x[i] < lo ? lo : (x[i] > hi ? hi : x[i]);
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    std::vector<LineageRelation> rels;
    rels.push_back(IdentityLineage(output, *inputs[0]));
    return rels;
  }

  OpArgs SampleArgs(const std::vector<int64_t>&, Rng* rng) const override {
    OpArgs args;
    double lo = rng->NextDouble();
    args.SetDouble("a_min", lo);
    args.SetDouble("a_max", lo + rng->NextDouble());
    return args;
  }
};

class NanToNumOp : public ArrayOp {
 public:
  const std::string& name() const override {
    static const std::string kName = "nan_to_num";
    return kName;
  }
  int num_inputs() const override { return 1; }
  OpCategory category() const override { return OpCategory::kElementwise; }

  Result<NDArray> Apply(const std::vector<const NDArray*>& inputs,
                        const OpArgs& args) const override {
    if (inputs.size() != 1)
      return Status::InvalidArgument("nan_to_num: 1 input");
    double nan_value = args.GetDoubleOr("nan", 0.0);
    const NDArray& x = *inputs[0];
    NDArray out(x.shape());
    for (int64_t i = 0; i < x.size(); ++i) {
      double v = x[i];
      if (std::isnan(v)) {
        out[i] = nan_value;
      } else if (std::isinf(v)) {
        out[i] = v > 0 ? std::numeric_limits<double>::max()
                       : std::numeric_limits<double>::lowest();
      } else {
        out[i] = v;
      }
    }
    return out;
  }

  Result<std::vector<LineageRelation>> Capture(
      const std::vector<const NDArray*>& inputs, const NDArray& output,
      const OpArgs&) const override {
    std::vector<LineageRelation> rels;
    rels.push_back(IdentityLineage(output, *inputs[0]));
    return rels;
  }
};

}  // namespace

void RegisterElementwiseOps(OpRegistry* r) {
  auto u = [r](const char* name, double (*fn)(double)) {
    r->Register(std::make_unique<UnaryElementwiseOp>(name, fn));
  };
  auto b = [r](const char* name, double (*fn)(double, double)) {
    r->Register(std::make_unique<BinaryElementwiseOp>(name, fn));
  };

  // 42 unary math functions.
  u("negative", [](double x) { return -x; });
  u("positive", [](double x) { return +x; });
  u("absolute", [](double x) { return std::fabs(x); });
  u("fabs", [](double x) { return std::fabs(x); });
  u("sign", [](double x) { return static_cast<double>((x > 0) - (x < 0)); });
  u("square", [](double x) { return x * x; });
  u("sqrt", [](double x) { return std::sqrt(std::fabs(x)); });
  u("cbrt", [](double x) { return std::cbrt(x); });
  u("reciprocal", [](double x) { return x == 0 ? 0.0 : 1.0 / x; });
  u("exp", [](double x) { return std::exp(x); });
  u("exp2", [](double x) { return std::exp2(x); });
  u("expm1", [](double x) { return std::expm1(x); });
  u("log", [](double x) { return std::log(std::fabs(x) + 1e-12); });
  u("log2", [](double x) { return std::log2(std::fabs(x) + 1e-12); });
  u("log10", [](double x) { return std::log10(std::fabs(x) + 1e-12); });
  u("log1p", [](double x) { return std::log1p(std::fabs(x)); });
  u("sin", [](double x) { return std::sin(x); });
  u("cos", [](double x) { return std::cos(x); });
  u("tan", [](double x) { return std::tan(x); });
  u("arcsin", [](double x) { return std::asin(std::fmod(x, 1.0)); });
  u("arccos", [](double x) { return std::acos(std::fmod(x, 1.0)); });
  u("arctan", [](double x) { return std::atan(x); });
  u("sinh", [](double x) { return std::sinh(x); });
  u("cosh", [](double x) { return std::cosh(x); });
  u("tanh", [](double x) { return std::tanh(x); });
  u("arcsinh", [](double x) { return std::asinh(x); });
  u("arccosh", [](double x) { return std::acosh(std::fabs(x) + 1.0); });
  u("arctanh", [](double x) { return std::atanh(std::fmod(x, 0.999)); });
  u("floor", [](double x) { return std::floor(x); });
  u("ceil", [](double x) { return std::ceil(x); });
  u("trunc", [](double x) { return std::trunc(x); });
  u("rint", [](double x) { return std::rint(x); });
  u("deg2rad", [](double x) { return x * kPi / 180.0; });
  u("rad2deg", [](double x) { return x * 180.0 / kPi; });
  u("degrees", [](double x) { return x * 180.0 / kPi; });
  u("radians", [](double x) { return x * kPi / 180.0; });
  u("logical_not", [](double x) { return x == 0.0 ? 1.0 : 0.0; });
  u("isnan", [](double x) { return std::isnan(x) ? 1.0 : 0.0; });
  u("isinf", [](double x) { return std::isinf(x) ? 1.0 : 0.0; });
  u("isfinite", [](double x) { return std::isfinite(x) ? 1.0 : 0.0; });
  u("signbit", [](double x) { return std::signbit(x) ? 1.0 : 0.0; });
  u("spacing", [](double x) {
    return std::nextafter(x, std::numeric_limits<double>::infinity()) - x;
  });

  // 31 binary functions.
  b("add", [](double x, double y) { return x + y; });
  b("subtract", [](double x, double y) { return x - y; });
  b("multiply", [](double x, double y) { return x * y; });
  b("divide", [](double x, double y) { return y == 0 ? 0.0 : x / y; });
  b("true_divide", [](double x, double y) { return y == 0 ? 0.0 : x / y; });
  b("floor_divide",
    [](double x, double y) { return y == 0 ? 0.0 : std::floor(x / y); });
  b("mod", [](double x, double y) { return y == 0 ? 0.0 : x - y * std::floor(x / y); });
  b("fmod", [](double x, double y) { return y == 0 ? 0.0 : std::fmod(x, y); });
  b("remainder",
    [](double x, double y) { return y == 0 ? 0.0 : x - y * std::floor(x / y); });
  b("power", [](double x, double y) { return std::pow(std::fabs(x), std::fmod(y, 4.0)); });
  b("float_power",
    [](double x, double y) { return std::pow(std::fabs(x), std::fmod(y, 4.0)); });
  b("maximum", [](double x, double y) { return x > y ? x : y; });
  b("minimum", [](double x, double y) { return x < y ? x : y; });
  b("fmax", [](double x, double y) { return std::fmax(x, y); });
  b("fmin", [](double x, double y) { return std::fmin(x, y); });
  b("arctan2", [](double x, double y) { return std::atan2(x, y); });
  b("hypot", [](double x, double y) { return std::hypot(x, y); });
  b("copysign", [](double x, double y) { return std::copysign(x, y); });
  b("nextafter", [](double x, double y) { return std::nextafter(x, y); });
  b("logaddexp", [](double x, double y) {
    double m = std::fmax(x, y);
    return m + std::log(std::exp(x - m) + std::exp(y - m));
  });
  b("logaddexp2", [](double x, double y) {
    double m = std::fmax(x, y);
    return m + std::log2(std::exp2(x - m) + std::exp2(y - m));
  });
  b("heaviside", [](double x, double y) {
    return x < 0 ? 0.0 : (x > 0 ? 1.0 : y);
  });
  b("greater", [](double x, double y) { return x > y ? 1.0 : 0.0; });
  b("greater_equal", [](double x, double y) { return x >= y ? 1.0 : 0.0; });
  b("less", [](double x, double y) { return x < y ? 1.0 : 0.0; });
  b("less_equal", [](double x, double y) { return x <= y ? 1.0 : 0.0; });
  b("equal", [](double x, double y) { return x == y ? 1.0 : 0.0; });
  b("not_equal", [](double x, double y) { return x != y ? 1.0 : 0.0; });
  b("logical_and",
    [](double x, double y) { return (x != 0 && y != 0) ? 1.0 : 0.0; });
  b("logical_or",
    [](double x, double y) { return (x != 0 || y != 0) ? 1.0 : 0.0; });
  b("logical_xor",
    [](double x, double y) { return ((x != 0) != (y != 0)) ? 1.0 : 0.0; });

  // 2 unary ops with scalar arguments.
  r->Register(std::make_unique<ClipOp>());
  r->Register(std::make_unique<NanToNumOp>());
}

}  // namespace dslog
