#include "array/op.h"

#include <cstring>
#include <sstream>

#include "common/hash.h"
#include "common/random.h"
#include "compress/varint.h"

namespace dslog {

uint64_t OpArgs::Hash() const {
  uint64_t h = kFnvOffset;
  for (const auto& [k, v] : ints_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, HashValue(v));
  }
  for (const auto& [k, v] : doubles_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, HashValue(v));
  }
  for (const auto& [k, v] : int_lists_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, Hash64(v.data(), v.size() * sizeof(int64_t)));
  }
  return h;
}

std::string OpArgs::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : ints_) {
    if (!first) os << ", ";
    os << k << "=" << v;
    first = false;
  }
  for (const auto& [k, v] : doubles_) {
    if (!first) os << ", ";
    os << k << "=" << v;
    first = false;
  }
  for (const auto& [k, v] : int_lists_) {
    if (!first) os << ", ";
    os << k << "=[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) os << ",";
      os << v[i];
    }
    os << "]";
    first = false;
  }
  os << "}";
  return os.str();
}

void OpArgs::AppendTo(std::string* dst) const {
  PutVarint64(dst, ints_.size());
  for (const auto& [k, v] : ints_) {
    PutLengthPrefixed(dst, k);
    PutVarintSigned(dst, v);
  }
  PutVarint64(dst, doubles_.size());
  for (const auto& [k, v] : doubles_) {
    PutLengthPrefixed(dst, k);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(dst, bits);
  }
  PutVarint64(dst, int_lists_.size());
  for (const auto& [k, v] : int_lists_) {
    PutLengthPrefixed(dst, k);
    PutVarint64(dst, v.size());
    for (int64_t x : v) PutVarintSigned(dst, x);
  }
}

bool OpArgs::ParseFrom(std::string_view src, size_t* pos) {
  ints_.clear();
  doubles_.clear();
  int_lists_.clear();
  uint64_t n;
  std::string key;
  if (!GetVarint64(src, pos, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t v;
    if (!GetLengthPrefixed(src, pos, &key)) return false;
    if (!GetVarintSigned(src, pos, &v)) return false;
    ints_[key] = v;
  }
  if (!GetVarint64(src, pos, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t bits;
    if (!GetLengthPrefixed(src, pos, &key)) return false;
    if (!GetFixed64(src, pos, &bits)) return false;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    doubles_[key] = v;
  }
  if (!GetVarint64(src, pos, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t len;
    if (!GetLengthPrefixed(src, pos, &key)) return false;
    if (!GetVarint64(src, pos, &len)) return false;
    // Bound the reserve by the bytes actually left: each element takes at
    // least one byte, so a forged length can never balloon the allocation.
    if (len > src.size() - *pos) return false;
    std::vector<int64_t> list;
    list.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      int64_t x;
      if (!GetVarintSigned(src, pos, &x)) return false;
      list.push_back(x);
    }
    int_lists_[key] = std::move(list);
  }
  return true;
}

OpArgs ArrayOp::SampleArgs(const std::vector<int64_t>&, Rng*) const {
  return OpArgs();
}

LineageRelation IdentityLineage(const NDArray& output, const NDArray& input) {
  DSLOG_CHECK(output.size() == input.size())
      << "identity lineage requires equal cell counts";
  LineageRelation rel(output.ndim(), input.ndim());
  rel.set_shapes(output.shape(), input.shape());
  rel.Reserve(output.size());
  std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
  std::vector<int64_t> in_idx(static_cast<size_t>(input.ndim()));
  for (int64_t flat = 0; flat < output.size(); ++flat) {
    output.UnravelIndex(flat, out_idx);
    input.UnravelIndex(flat, in_idx);
    rel.Add(out_idx, in_idx);
  }
  return rel;
}

LineageRelation AllToAllLineage(const NDArray& output, const NDArray& input) {
  LineageRelation rel(output.ndim(), input.ndim());
  rel.set_shapes(output.shape(), input.shape());
  rel.Reserve(output.size() * input.size());
  std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
  std::vector<int64_t> in_idx(static_cast<size_t>(input.ndim()));
  for (int64_t of = 0; of < output.size(); ++of) {
    output.UnravelIndex(of, out_idx);
    for (int64_t inf = 0; inf < input.size(); ++inf) {
      input.UnravelIndex(inf, in_idx);
      rel.Add(out_idx, in_idx);
    }
  }
  return rel;
}

}  // namespace dslog
