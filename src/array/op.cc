#include "array/op.h"

#include <sstream>

#include "common/hash.h"
#include "common/random.h"

namespace dslog {

uint64_t OpArgs::Hash() const {
  uint64_t h = kFnvOffset;
  for (const auto& [k, v] : ints_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, HashValue(v));
  }
  for (const auto& [k, v] : doubles_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, HashValue(v));
  }
  for (const auto& [k, v] : int_lists_) {
    h = HashCombine(h, Hash64(k));
    h = HashCombine(h, Hash64(v.data(), v.size() * sizeof(int64_t)));
  }
  return h;
}

std::string OpArgs::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : ints_) {
    if (!first) os << ", ";
    os << k << "=" << v;
    first = false;
  }
  for (const auto& [k, v] : doubles_) {
    if (!first) os << ", ";
    os << k << "=" << v;
    first = false;
  }
  for (const auto& [k, v] : int_lists_) {
    if (!first) os << ", ";
    os << k << "=[";
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) os << ",";
      os << v[i];
    }
    os << "]";
    first = false;
  }
  os << "}";
  return os.str();
}

OpArgs ArrayOp::SampleArgs(const std::vector<int64_t>&, Rng*) const {
  return OpArgs();
}

LineageRelation IdentityLineage(const NDArray& output, const NDArray& input) {
  DSLOG_CHECK(output.size() == input.size())
      << "identity lineage requires equal cell counts";
  LineageRelation rel(output.ndim(), input.ndim());
  rel.set_shapes(output.shape(), input.shape());
  rel.Reserve(output.size());
  std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
  std::vector<int64_t> in_idx(static_cast<size_t>(input.ndim()));
  for (int64_t flat = 0; flat < output.size(); ++flat) {
    output.UnravelIndex(flat, out_idx);
    input.UnravelIndex(flat, in_idx);
    rel.Add(out_idx, in_idx);
  }
  return rel;
}

LineageRelation AllToAllLineage(const NDArray& output, const NDArray& input) {
  LineageRelation rel(output.ndim(), input.ndim());
  rel.set_shapes(output.shape(), input.shape());
  rel.Reserve(output.size() * input.size());
  std::vector<int64_t> out_idx(static_cast<size_t>(output.ndim()));
  std::vector<int64_t> in_idx(static_cast<size_t>(input.ndim()));
  for (int64_t of = 0; of < output.size(); ++of) {
    output.UnravelIndex(of, out_idx);
    for (int64_t inf = 0; inf < input.size(); ++inf) {
      input.UnravelIndex(inf, in_idx);
      rel.Add(out_idx, in_idx);
    }
  }
  return rel;
}

}  // namespace dslog
