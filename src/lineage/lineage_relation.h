// The uncompressed relational lineage model (ICDE'24 §III.B): one relation
// R(b1..bl, a1..am) per (output array, input array) pair of an operation,
// with one row per contribution pair B[b...] <- A[a...]. Indices are
// 0-based (the paper uses 1-based; the offset carries no information).

#ifndef DSLOG_LINEAGE_LINEAGE_RELATION_H_
#define DSLOG_LINEAGE_LINEAGE_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace dslog {

/// Dense row store of lineage tuples (b1..bl, a1..am).
class LineageRelation {
 public:
  LineageRelation() = default;
  LineageRelation(int out_ndim, int in_ndim)
      : out_ndim_(out_ndim), in_ndim_(in_ndim) {}

  int out_ndim() const { return out_ndim_; }
  int in_ndim() const { return in_ndim_; }
  int arity() const { return out_ndim_ + in_ndim_; }
  int64_t num_rows() const {
    return arity() == 0 ? 0 : static_cast<int64_t>(flat_.size()) / arity();
  }

  /// Shapes of the endpoint arrays; required for index reshaping and for
  /// size accounting.
  const std::vector<int64_t>& out_shape() const { return out_shape_; }
  const std::vector<int64_t>& in_shape() const { return in_shape_; }
  void set_shapes(std::vector<int64_t> out_shape, std::vector<int64_t> in_shape) {
    DSLOG_CHECK(static_cast<int>(out_shape.size()) == out_ndim_);
    DSLOG_CHECK(static_cast<int>(in_shape.size()) == in_ndim_);
    out_shape_ = std::move(out_shape);
    in_shape_ = std::move(in_shape);
  }

  void Reserve(int64_t rows) { flat_.reserve(static_cast<size_t>(rows) * arity()); }

  /// Appends one contribution pair.
  void Add(std::span<const int64_t> out_idx, std::span<const int64_t> in_idx) {
    DSLOG_DCHECK(static_cast<int>(out_idx.size()) == out_ndim_);
    DSLOG_DCHECK(static_cast<int>(in_idx.size()) == in_ndim_);
    flat_.insert(flat_.end(), out_idx.begin(), out_idx.end());
    flat_.insert(flat_.end(), in_idx.begin(), in_idx.end());
  }

  /// Appends a pre-flattened tuple of length arity().
  void AddTuple(std::span<const int64_t> tuple) {
    DSLOG_DCHECK(static_cast<int>(tuple.size()) == arity());
    flat_.insert(flat_.end(), tuple.begin(), tuple.end());
  }

  std::span<const int64_t> Row(int64_t i) const {
    return {flat_.data() + i * arity(), static_cast<size_t>(arity())};
  }

  const std::vector<int64_t>& flat() const { return flat_; }
  std::vector<int64_t>& mutable_flat() { return flat_; }

  /// Sorts rows lexicographically and removes duplicates (set semantics).
  void SortAndDedup();

  /// Set equality against another relation (both normalized internally).
  bool EqualAsSet(const LineageRelation& other) const;

  /// Raw in-memory footprint of the tuple payload in bytes.
  int64_t PayloadBytes() const { return static_cast<int64_t>(flat_.size() * sizeof(int64_t)); }

  std::string DebugString(int64_t max_rows = 20) const;

 private:
  int out_ndim_ = 0;
  int in_ndim_ = 0;
  std::vector<int64_t> out_shape_;
  std::vector<int64_t> in_shape_;
  std::vector<int64_t> flat_;
};

}  // namespace dslog

#endif  // DSLOG_LINEAGE_LINEAGE_RELATION_H_
