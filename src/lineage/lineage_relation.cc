#include "lineage/lineage_relation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dslog {

namespace {

// Lexicographic comparison of two tuples of length `arity` in `flat`.
struct TupleLess {
  const int64_t* flat;
  int arity;
  bool operator()(int64_t a, int64_t b) const {
    const int64_t* pa = flat + a * arity;
    const int64_t* pb = flat + b * arity;
    for (int k = 0; k < arity; ++k) {
      if (pa[k] != pb[k]) return pa[k] < pb[k];
    }
    return false;
  }
};

}  // namespace

void LineageRelation::SortAndDedup() {
  int a = arity();
  if (a == 0 || flat_.empty()) return;
  int64_t n = num_rows();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), TupleLess{flat_.data(), a});
  std::vector<int64_t> sorted;
  sorted.reserve(flat_.size());
  const int64_t* prev = nullptr;
  for (int64_t idx : order) {
    const int64_t* row = flat_.data() + idx * a;
    if (prev != nullptr && std::equal(row, row + a, prev)) continue;
    sorted.insert(sorted.end(), row, row + a);
    prev = sorted.data() + sorted.size() - static_cast<size_t>(a);
  }
  flat_ = std::move(sorted);
}

bool LineageRelation::EqualAsSet(const LineageRelation& other) const {
  if (out_ndim_ != other.out_ndim_ || in_ndim_ != other.in_ndim_) return false;
  LineageRelation a = *this;
  LineageRelation b = other;
  a.SortAndDedup();
  b.SortAndDedup();
  return a.flat_ == b.flat_;
}

std::string LineageRelation::DebugString(int64_t max_rows) const {
  std::ostringstream os;
  os << "LineageRelation(out_ndim=" << out_ndim_ << ", in_ndim=" << in_ndim_
     << ", rows=" << num_rows() << ")\n";
  int64_t n = std::min(num_rows(), max_rows);
  for (int64_t i = 0; i < n; ++i) {
    auto row = Row(i);
    os << "  (";
    for (size_t k = 0; k < row.size(); ++k) {
      if (k) os << ", ";
      if (static_cast<int>(k) == out_ndim_) os << "| ";
      os << row[k];
    }
    os << ")\n";
  }
  if (num_rows() > max_rows) os << "  ...\n";
  return os.str();
}

}  // namespace dslog
