#include "common/phf.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"

namespace dslog {
namespace {

constexpr uint32_t kPhfMagic = 0x46485044u;  // "DPHF" little-endian
constexpr uint32_t kPhfVersion = 1;
constexpr uint32_t kFingerprintBits = 8;
constexpr size_t kHeaderBytes = 48;
constexpr int kBucketLambda = 4;  // average keys per bucket

// Deterministic seed schedule: construction must be reproducible (same key
// set, same bytes) so serialized stores are bit-stable, so there is no
// random source here — just a fixed base seed and a fixed stride between
// retry attempts. With slot slack (below) the first seed succeeds with
// overwhelming probability; the retries are a belt-and-braces fallback.
constexpr uint64_t kSeedBase = 0x5851f42d4c957f2dULL;
constexpr uint64_t kSeedStep = 0x14057b7ef767814fULL;
constexpr int kMaxSeedAttempts = 8;

// Displacement salt: must match between builder and view.
constexpr uint64_t kDispSalt = 0x9e3779b97f4a7c15ULL;

// Hash-table size for n keys: ~6% slack over minimal. The bounded 16-bit
// displacement search needs every bucket — including the last singletons —
// to see a non-vanishing fraction of free slots; in a minimal table the
// final singleton faces O(1) free slots out of n and 2^16 probes fail with
// probability ~e^(-65536/n), which is near-certain by n = 10^6. The slack
// keeps >= n/16 slots free at all times, making failure probability
// negligible at any n. Rank compaction (occupancy bitmap + directory) maps
// the sparse table back onto dense [0, n).
inline uint64_t SlotsFor(uint64_t n) { return n == 0 ? 0 : n + n / 16 + 1; }

inline uint64_t BitmapWords(uint64_t slots) { return (slots + 63) / 64; }

// MurmurHash3 64-bit finalizer. Bijective, so distinct inputs stay
// distinct; all bucket/fingerprint/position derivation goes through it.
inline uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t PositionOf(uint64_t hb, uint16_t disp, uint64_t slots) {
  return Mix(hb ^ (kDispSalt * (static_cast<uint64_t>(disp) + 1))) % slots;
}

inline size_t Pad8(size_t v) { return (v + 7) & ~static_cast<size_t>(7); }

inline void PutU32(std::string* s, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  s->append(buf, 4);
}

inline void PutU64(std::string* s, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  s->append(buf, 8);
}

inline uint32_t ReadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t ReadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint16_t ReadU16(const unsigned char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

std::string Serialize(uint64_t n, uint64_t seed,
                      const std::vector<uint16_t>& disp,
                      const std::vector<uint8_t>& fp,
                      const std::vector<uint64_t>& occ,
                      const std::vector<uint32_t>& rank) {
  std::string out;
  const size_t disp_bytes = Pad8(2 * disp.size());
  const size_t fp_bytes = Pad8(fp.size());
  const size_t rank_bytes = Pad8(4 * rank.size());
  out.reserve(kHeaderBytes + disp_bytes + fp_bytes + 8 * occ.size() +
              rank_bytes);
  PutU32(&out, kPhfMagic);
  PutU32(&out, kPhfVersion);
  PutU64(&out, n);
  PutU64(&out, SlotsFor(n));
  PutU64(&out, disp.size());
  PutU64(&out, seed);
  PutU32(&out, kFingerprintBits);
  PutU32(&out, 0);  // reserved
  out.append(reinterpret_cast<const char*>(disp.data()), 2 * disp.size());
  out.append(disp_bytes - 2 * disp.size(), '\0');
  out.append(reinterpret_cast<const char*>(fp.data()), fp.size());
  out.append(fp_bytes - fp.size(), '\0');
  for (uint64_t w : occ) PutU64(&out, w);
  for (uint32_t r : rank) PutU32(&out, r);
  out.append(rank_bytes - 4 * rank.size(), '\0');
  return out;
}

// One full construction attempt under `seed`. On success fills disp and the
// slot occupancy and returns true; on displacement exhaustion returns false
// so the caller can move to the next seed.
bool TryBuild(const std::vector<uint64_t>& hashes, uint64_t seed, uint64_t m,
              std::vector<uint16_t>* disp, std::vector<bool>* occupied,
              std::vector<uint64_t>* hb_out, std::vector<uint32_t>* bucket_of) {
  const uint64_t n = hashes.size();
  const uint64_t slots = SlotsFor(n);
  // Bucketize into CSR form: bucket_of, counts -> offsets -> members.
  std::vector<uint64_t>& hb = *hb_out;
  hb.assign(n, 0);
  bucket_of->assign(n, 0);
  std::vector<uint32_t> bucket_size(m, 0);
  for (uint64_t i = 0; i < n; ++i) {
    hb[i] = Mix(hashes[i] ^ seed);
    (*bucket_of)[i] = static_cast<uint32_t>(hb[i] % m);
    ++bucket_size[(*bucket_of)[i]];
  }
  std::vector<uint32_t> bucket_off(m + 1, 0);
  for (uint64_t b = 0; b < m; ++b) bucket_off[b + 1] = bucket_off[b] + bucket_size[b];
  std::vector<uint32_t> members(n);
  {
    std::vector<uint32_t> cursor(bucket_off.begin(), bucket_off.end() - 1);
    for (uint64_t i = 0; i < n; ++i) members[cursor[(*bucket_of)[i]]++] = static_cast<uint32_t>(i);
  }

  // Largest buckets first: they have the fewest viable displacements, so
  // they get first pick of free slots.
  std::vector<uint32_t> order(m);
  for (uint64_t b = 0; b < m; ++b) order[b] = static_cast<uint32_t>(b);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (bucket_size[a] != bucket_size[b]) return bucket_size[a] > bucket_size[b];
    return a < b;
  });

  occupied->assign(slots, false);
  std::vector<uint64_t> trial;
  disp->assign(m, 0);
  for (uint32_t b : order) {
    const uint32_t begin = bucket_off[b], end = bucket_off[b + 1];
    if (begin == end) continue;
    bool placed = false;
    for (uint32_t d = 0; d <= 0xffff; ++d) {
      trial.clear();
      bool clash = false;
      for (uint32_t s = begin; s < end && !clash; ++s) {
        const uint64_t pos = PositionOf(hb[members[s]], static_cast<uint16_t>(d), slots);
        if ((*occupied)[pos]) {
          clash = true;
          break;
        }
        for (uint64_t t : trial) {
          if (t == pos) {
            clash = true;
            break;
          }
        }
        trial.push_back(pos);
      }
      if (!clash) {
        for (uint64_t pos : trial) (*occupied)[pos] = true;
        (*disp)[b] = static_cast<uint16_t>(d);
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

}  // namespace

Result<std::string> PhfBuilder::Build(const std::vector<uint64_t>& hashes) {
  const uint64_t n = hashes.size();
  if (n == 0) return Serialize(0, kSeedBase, {}, {}, {}, {});
  if (n > 0xffffffffull) {
    return Status::Internal("PhfBuilder: rank directory limited to 2^32 keys");
  }

  {
    std::vector<uint64_t> sorted(hashes);
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("PhfBuilder: duplicate key hashes");
    }
  }

  const uint64_t m = (n + kBucketLambda - 1) / kBucketLambda;
  const uint64_t slots = SlotsFor(n);
  std::vector<uint16_t> disp;
  std::vector<bool> occupied;
  std::vector<uint64_t> hb;
  std::vector<uint32_t> bucket_of;
  for (int attempt = 0; attempt < kMaxSeedAttempts; ++attempt) {
    const uint64_t seed = kSeedBase + kSeedStep * static_cast<uint64_t>(attempt);
    if (!TryBuild(hashes, seed, m, &disp, &occupied, &hb, &bucket_of)) continue;

    // Fingerprints live in the sparse table (holes keep fp 0; the bitmap,
    // not the fingerprint, is what rejects a probe landing on a hole).
    std::vector<uint8_t> fp(slots, 0);
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t pos = PositionOf(hb[i], disp[bucket_of[i]], slots);
      fp[pos] = static_cast<uint8_t>(hb[i] >> 56);
    }

    // Occupancy bitmap + per-word rank prefix sums compact the sparse
    // table back onto dense [0, n).
    const uint64_t words = BitmapWords(slots);
    std::vector<uint64_t> occ(words, 0);
    for (uint64_t s = 0; s < slots; ++s) {
      if (occupied[s]) occ[s >> 6] |= uint64_t{1} << (s & 63);
    }
    std::vector<uint32_t> rank(words, 0);
    uint32_t running = 0;
    for (uint64_t w = 0; w < words; ++w) {
      rank[w] = running;
      running += static_cast<uint32_t>(std::popcount(occ[w]));
    }
    DSLOG_CHECK(running == n);
    return Serialize(n, seed, disp, fp, occ, rank);
  }
  return Status::Internal(
      Format("PhfBuilder: displacement search exhausted after %d seeds over "
             "%llu keys",
             kMaxSeedAttempts, static_cast<unsigned long long>(n)));
}

Result<PhfView> PhfView::Bind(std::string_view block) {
  const auto* p = reinterpret_cast<const unsigned char*>(block.data());
  if (block.size() < kHeaderBytes) {
    return Status::Corruption("PHF block shorter than header");
  }
  if (ReadU32(p) != kPhfMagic) return Status::Corruption("PHF bad magic");
  if (ReadU32(p + 4) != kPhfVersion) {
    return Status::Corruption("PHF unsupported version");
  }
  const uint64_t n = ReadU64(p + 8);
  const uint64_t slots = ReadU64(p + 16);
  const uint64_t m = ReadU64(p + 24);
  const uint64_t seed = ReadU64(p + 32);
  const uint32_t fp_bits = ReadU32(p + 40);
  const uint32_t reserved = ReadU32(p + 44);
  if (n > block.size()) return Status::Corruption("PHF key count exceeds block");
  const uint64_t want_m = (n + kBucketLambda - 1) / kBucketLambda;
  if (m != want_m || slots != SlotsFor(n) || fp_bits != kFingerprintBits ||
      reserved != 0) {
    return Status::Corruption("PHF header fields inconsistent");
  }
  const uint64_t words = BitmapWords(slots);
  const size_t disp_bytes = Pad8(2 * static_cast<size_t>(m));
  const size_t fp_bytes = Pad8(static_cast<size_t>(slots));
  const size_t expect = kHeaderBytes + disp_bytes + fp_bytes +
                        8 * static_cast<size_t>(words) +
                        Pad8(4 * static_cast<size_t>(words));
  if (block.size() != expect) {
    return Status::Corruption(
        Format("PHF block size %zu, expected %zu", block.size(), expect));
  }
  PhfView v;
  v.block_ = block;
  v.n_ = n;
  v.slots_ = slots;
  v.m_ = m;
  v.seed_ = seed;
  v.fingerprint_bits_ = fp_bits;
  v.disp_ = p + kHeaderBytes;
  v.fp_ = v.disp_ + disp_bytes;
  v.occ_ = v.fp_ + fp_bytes;
  v.rank_ = v.occ_ + 8 * static_cast<size_t>(words);
  return v;
}

int64_t PhfView::Lookup(uint64_t hash) const {
  if (n_ == 0) return -1;
  const uint64_t hb = Mix(hash ^ seed_);
  const uint64_t b = hb % m_;
  const uint16_t d = ReadU16(disp_ + 2 * b);
  const uint64_t pos = PositionOf(hb, d, slots_);
  if (fp_[pos] != static_cast<uint8_t>(hb >> 56)) return -1;
  const uint64_t word = pos >> 6;
  const uint64_t bits = ReadU64(occ_ + 8 * word);
  const uint64_t bit = uint64_t{1} << (pos & 63);
  if (!(bits & bit)) return -1;
  const uint64_t r = ReadU32(rank_ + 4 * word) +
                     static_cast<uint64_t>(std::popcount(bits & (bit - 1)));
  // Payload bytes (bitmap/rank) are integrity-checked by the enclosing
  // footer checksum, not at Bind; clamp so corrupt payloads can never send
  // a caller out of range.
  if (r >= n_) return -1;
  return static_cast<int64_t>(r);
}

}  // namespace dslog
