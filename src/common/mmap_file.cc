#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/io.h"

namespace dslog {

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() noexcept {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  addr_ = std::exchange(other.addr_, nullptr);
  size_ = std::exchange(other.size_, 0);
  fallback_ = std::move(other.fallback_);
  // data_ points into the mapping or into fallback_, which just moved here.
  data_ = addr_ != nullptr ? static_cast<const char*>(addr_)
                           : fallback_.data();
  other.data_ = nullptr;
  other.fallback_.clear();
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path, bool allow_mmap) {
  MmapFile file;
  if (allow_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
      return Status::IOError("open failed: " + path + ": " +
                             std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("fstat failed: " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      file.data_ = file.fallback_.data();
      return file;
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping outlives the descriptor
    if (addr != MAP_FAILED) {
      file.addr_ = addr;
      file.data_ = static_cast<const char*>(addr);
      file.size_ = size;
      return file;
    }
    // Fall through to the read path (e.g. filesystems without mmap).
  }
  DSLOG_ASSIGN_OR_RETURN(file.fallback_, ReadFileToString(path));
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;
}

}  // namespace dslog
