// Fixed-size worker pool for the parallel query subsystem. Deliberately
// work-stealing-free: one shared FIFO queue drained by a fixed set of
// workers, which is sufficient for the coarse-grained partitions the query
// engine produces (per-query batch entries, per-chunk θ-join slices) and
// keeps the scheduler trivially auditable under ThreadSanitizer.

#ifndef DSLOG_COMMON_THREAD_POOL_H_
#define DSLOG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dslog {

/// A fixed pool of worker threads over a single FIFO task queue.
///
/// Threading contract: Submit and ParallelFor are safe to call from any
/// thread. Tasks must not throw (the library is exception-free; fatal
/// conditions go through DSLOG_CHECK).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: everything then runs on
  /// the calling thread).
  explicit ThreadPool(int num_threads);
  /// Drains nothing: pending tasks that never started are dropped, running
  /// tasks are joined.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution on some worker.
  void Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n) and returns once all iterations have
  /// completed. Iterations are claimed dynamically from a shared counter by
  /// up to `max_parallelism` threads (0 = pool size + 1, i.e. no cap). The
  /// calling thread always participates, so forward progress is guaranteed
  /// even when every worker is busy with other jobs. Nested calls from
  /// inside a pool worker run inline (serially) — the fixed pool cannot be
  /// re-entered without risking deadlock, and the outer ParallelFor already
  /// owns the parallelism.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                   int max_parallelism = 0);

  /// True when called from inside a pool worker thread (any pool). This is
  /// the predicate ParallelFor uses to degrade nested calls to inline
  /// execution; exposed so tests can assert the inline-on-nesting path.
  static bool InWorkerThread();

  /// The process-wide pool shared by the query subsystem. Sized to the
  /// hardware concurrency but at least 8, so thread-count sweeps behave
  /// identically on small machines (idle workers only sleep). Intentionally
  /// never destroyed: worker shutdown during static destruction would race
  /// other translation units' static teardown.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dslog

#endif  // DSLOG_COMMON_THREAD_POOL_H_
