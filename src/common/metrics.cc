#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace dslog {
namespace metrics {

namespace {

// Stable JSON string escaping (metric names are ASCII identifiers today,
// but a stray quote must not corrupt the document).
std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string I64(int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

size_t Counter::ShardIndex() noexcept {
  // One shard per thread for the process lifetime; the counter of new
  // thread ids spreads threads across shards without hashing the opaque
  // std::thread::id each Add.
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      static_cast<size_t>(kCounterShards);
  return shard;
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; walk buckets until reached.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[static_cast<size_t>(b)];
    if (seen >= rank) return Histogram::BucketLowerBound(b);
  }
  return Histogram::BucketLowerBound(Histogram::kBuckets - 1);
}

namespace {

template <typename Vec>
const typename Vec::value_type* FindByName(const Vec& v,
                                           std::string_view name) {
  for (const auto& e : v)
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace

const CounterSnapshot* RegistrySnapshot::FindCounter(
    std::string_view name) const {
  return FindByName(counters, name);
}

const CounterSnapshot* RegistrySnapshot::FindGauge(
    std::string_view name) const {
  return FindByName(gauges, name);
}

const HistogramSnapshot* RegistrySnapshot::FindHistogram(
    std::string_view name) const {
  return FindByName(histograms, name);
}

int64_t RegistrySnapshot::CounterValue(std::string_view name) const {
  const CounterSnapshot* c = FindCounter(name);
  return c != nullptr ? c->value : 0;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ", ";
    first = false;
    out += JsonQuote(c.name) + ": " + I64(c.value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ", ";
    first = false;
    out += JsonQuote(g.name) + ": " + I64(g.value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ", ";
    first = false;
    out += JsonQuote(h.name) + ": {\"count\": " + I64(h.count) +
           ", \"sum\": " + I64(h.sum) + ", \"max\": " + I64(h.max) +
           ", \"p50\": " + I64(h.Quantile(0.5)) +
           ", \"p95\": " + I64(h.Quantile(0.95)) +
           ", \"p99\": " + I64(h.Quantile(0.99)) + ", \"buckets\": [";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      int64_t n = h.buckets[static_cast<size_t>(b)];
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + I64(Histogram::BucketLowerBound(b)) + ", " + I64(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  for (const auto& c : counters)
    out += "counter   " + c.name + " = " + I64(c.value) + "\n";
  for (const auto& g : gauges)
    out += "gauge     " + g.name + " = " + I64(g.value) + "\n";
  for (const auto& h : histograms) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "histogram %s: count=%" PRId64 " sum=%" PRId64
                  " mean=%.1f p50=%" PRId64 " p95=%" PRId64 " max=%" PRId64
                  "\n",
                  h.name.c_str(), h.count, h.sum, h.Mean(), h.Quantile(0.5),
                  h.Quantile(0.95), h.max);
    out += buf;
  }
  return out;
}

Registry& Registry::Global() {
  // Leaked on purpose: metric references handed out to static locals in
  // instrumented code must outlive every destructor.
  static Registry* g = new Registry();
  return *g;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->Value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->Value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.max = h->max();
    for (int b = 0; b < Histogram::kBuckets; ++b)
      hs.buckets[static_cast<size_t>(b)] = h->bucket(b);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;  // maps iterate name-sorted, so snapshots are too
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace metrics
}  // namespace dslog
