// Minimal file I/O helpers (whole-file read/write, sizes, temp dirs).

#ifndef DSLOG_COMMON_IO_H_
#define DSLOG_COMMON_IO_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace dslog {

/// Writes `data` to `path`, truncating any existing file.
Status WriteFile(const std::string& path, const std::string& data);

/// Reads the entire file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

/// Size in bytes of the file at `path`.
Result<int64_t> FileSize(const std::string& path);

/// Creates directory `path` (and parents). OK if it already exists.
Status CreateDirs(const std::string& path);

/// Removes a file if it exists; OK when absent.
Status RemoveFileIfExists(const std::string& path);

/// A process-unique scratch directory under the system temp dir; created on
/// first use.
std::string ScratchDir();

}  // namespace dslog

#endif  // DSLOG_COMMON_IO_H_
