// Minimal file I/O helpers (whole-file read/write, sizes, temp dirs).

#ifndef DSLOG_COMMON_IO_H_
#define DSLOG_COMMON_IO_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace dslog {

/// Writes `data` to `path`, truncating any existing file.
Status WriteFile(const std::string& path, const std::string& data);

/// Writes `data` to a temp file next to `path` and rename()s it into place,
/// so a crash mid-write never leaves a torn file at `path`: readers see
/// either the old content or the new content, never a prefix.
Status WriteFileAtomic(const std::string& path, const std::string& data);

namespace io_testing {

/// Test-only crash simulation for WriteFileAtomic. When set, the hook runs
/// after the temp file has been written but before the rename; a non-OK
/// return aborts the write exactly as a crash at that point would (temp
/// file left behind, destination untouched). Pass nullptr to clear.
/// Not thread-safe; intended for single-threaded test bodies only.
void SetAtomicWriteCrashHook(std::function<Status(const std::string& path)> hook);

}  // namespace io_testing

/// Reads the entire file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

/// Size in bytes of the file at `path`.
Result<int64_t> FileSize(const std::string& path);

/// Creates directory `path` (and parents). OK if it already exists.
Status CreateDirs(const std::string& path);

/// Removes a file if it exists; OK when absent.
Status RemoveFileIfExists(const std::string& path);

/// A process-unique scratch directory under the system temp dir; created on
/// first use.
std::string ScratchDir();

}  // namespace dslog

#endif  // DSLOG_COMMON_IO_H_
