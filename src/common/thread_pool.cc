#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/check.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace dslog {

namespace {

// Set for the lifetime of a worker thread; lets ParallelFor detect
// re-entrant use from inside the pool and degrade to inline execution.
thread_local bool tls_in_pool_worker = false;

// Pool observability (common/metrics.h). Submitted tasks are coarse
// (θ-join partitions, batch entries), so two clock reads per task and a
// few relaxed counter adds are noise against the task body. References
// resolved once.
struct PoolMetrics {
  metrics::Counter& tasks_submitted;
  metrics::Counter& pfor_calls;
  metrics::Counter& pfor_inline;
  metrics::Counter& pfor_helpers;
  metrics::Histogram& queue_depth;
  metrics::Histogram& task_wait_us;
  metrics::Histogram& task_run_us;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      metrics::Registry& reg = metrics::Registry::Global();
      return new PoolMetrics{
          reg.counter("dslog.pool.tasks_submitted"),
          reg.counter("dslog.pool.pfor_calls"),
          reg.counter("dslog.pool.pfor_inline"),
          reg.counter("dslog.pool.pfor_helpers"),
          reg.histogram("dslog.pool.queue_depth"),
          reg.histogram("dslog.pool.task_wait_us"),
          reg.histogram("dslog.pool.task_run_us"),
      };
    }();
    return *m;
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  DSLOG_CHECK(num_threads >= 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics& pm = PoolMetrics::Get();
  pm.tasks_submitted.Increment();
  // Wrap to measure queue wait (enqueue -> dequeue) and run time. The
  // timer's epoch travels with the task.
  auto timed = [task = std::move(task), &pm, wait = WallTimer()]() mutable {
    pm.task_wait_us.Record(
        static_cast<int64_t>(wait.ElapsedSeconds() * 1e6));
    WallTimer run;
    task();
    pm.task_run_us.Record(static_cast<int64_t>(run.ElapsedSeconds() * 1e6));
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push_back(std::move(timed));
    pm.queue_depth.Record(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn,
                             int max_parallelism) {
  if (n <= 0) return;
  PoolMetrics& pm = PoolMetrics::Get();
  pm.pfor_calls.Increment();
  if (n == 1 || max_parallelism == 1 || workers_.empty() ||
      tls_in_pool_worker) {
    pm.pfor_inline.Increment();
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared iteration state. Helpers claim indices from `next`; the last
  // thread to finish an iteration signals the caller. Kept alive by
  // shared_ptr because a helper task may only get scheduled after the loop
  // is already exhausted (it then sees next >= n and exits immediately).
  struct State {
    std::function<void(int64_t)> fn;
    int64_t n = 0;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->fn = fn;
  state->n = n;

  auto run = [](const std::shared_ptr<State>& s) {
    int64_t i;
    while ((i = s->next.fetch_add(1, std::memory_order_relaxed)) < s->n) {
      s->fn(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        // Lock pairs with the caller's predicate check so the notify cannot
        // fall between its check and its wait.
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  const int64_t cap = max_parallelism > 0
                          ? static_cast<int64_t>(max_parallelism)
                          : static_cast<int64_t>(workers_.size()) + 1;
  const int64_t helpers = std::min<int64_t>(
      {n - 1, static_cast<int64_t>(workers_.size()), cap - 1});
  pm.pfor_helpers.Add(helpers);
  for (int64_t h = 0; h < helpers; ++h)
    Submit([state, run] { run(state); });
  run(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

bool ThreadPool::InWorkerThread() { return tls_in_pool_worker; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max(8, static_cast<int>(std::thread::hardware_concurrency())));
  return *pool;
}

}  // namespace dslog
