// Portable SIMD primitives for the θ-join kernels: AVX2 on x86-64, NEON on
// aarch64, and a branchless scalar fallback everywhere else — selected at
// compile time (no runtime dispatch, so the kernels inline flat).
//
// The primitives are *filters over contiguous int64 columns*: given the
// interval-index's sorted lo/hi arrays, they compact the positions whose
// interval satisfies a bound test into a position buffer. Every variant
// (including scalar) emits positions in ascending order and keeps the exact
// semantics of the scalar comparison, so the query paths built on top are
// bit-identical across ISAs — the differential suites assert this.
//
// Build knobs: -DDSLOG_SIMD_FORCE_SCALAR compiles the scalar fallback on
// any ISA (the CMake option DSLOG_SIMD=OFF sets it; CI runs one job this
// way). On x86-64 the vector path needs -mavx2, which the top-level
// CMakeLists adds when the compiler supports it.

#ifndef DSLOG_COMMON_SIMD_H_
#define DSLOG_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

#if defined(DSLOG_SIMD_FORCE_SCALAR)
// Scalar fallback requested explicitly.
#elif defined(__AVX2__)
#define DSLOG_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define DSLOG_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dslog {
namespace simd {

#if defined(DSLOG_SIMD_AVX2)
inline constexpr const char* kIsaName = "avx2";
inline constexpr int kInt64Lanes = 4;
#elif defined(DSLOG_SIMD_NEON)
inline constexpr const char* kIsaName = "neon";
inline constexpr int kInt64Lanes = 2;
#else
inline constexpr const char* kIsaName = "scalar";
inline constexpr int kInt64Lanes = 1;
#endif

/// Appends to `out` every position i in [0, n) with
/// lo[i] <= probe_hi && hi[i] >= probe_lo, ascending. Returns the count.
/// `out` must have room for n entries. This is the full-scan overlap filter
/// over the index's sorted columns.
inline size_t FilterOverlapping(const int64_t* lo, const int64_t* hi,
                                size_t n, int64_t probe_lo, int64_t probe_hi,
                                int32_t* out) {
  size_t count = 0;
  size_t i = 0;
#if defined(DSLOG_SIMD_AVX2)
  const __m256i vphi = _mm256_set1_epi64x(probe_hi);
  const __m256i vplo = _mm256_set1_epi64x(probe_lo);
  for (; i + 4 <= n; i += 4) {
    const __m256i vlo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hi + i));
    // miss = lo > probe_hi || probe_lo > hi; movemask compacts the four
    // 64-bit lane signs into one nibble.
    const __m256i miss = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, vphi),
                                         _mm256_cmpgt_epi64(vplo, vhi));
    unsigned mask =
        ~static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(miss))) &
        0xFu;
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[count++] = static_cast<int32_t>(i + bit);
      mask &= mask - 1;
    }
  }
#elif defined(DSLOG_SIMD_NEON)
  const int64x2_t vphi = vdupq_n_s64(probe_hi);
  const int64x2_t vplo = vdupq_n_s64(probe_lo);
  for (; i + 2 <= n; i += 2) {
    const int64x2_t vlo = vld1q_s64(lo + i);
    const int64x2_t vhi = vld1q_s64(hi + i);
    const uint64x2_t hit = vandq_u64(vcleq_s64(vlo, vphi),
                                     vcgeq_s64(vhi, vplo));
    out[count] = static_cast<int32_t>(i);
    count += vgetq_lane_u64(hit, 0) & 1;
    out[count] = static_cast<int32_t>(i + 1);
    count += vgetq_lane_u64(hit, 1) & 1;
  }
#endif
  // Scalar tail (and the whole loop on scalar builds): branchless compact —
  // the position is always written, the cursor advances only on a hit.
  for (; i < n; ++i) {
    out[count] = static_cast<int32_t>(i);
    count += static_cast<size_t>((lo[i] <= probe_hi) & (hi[i] >= probe_lo));
  }
  return count;
}

/// Appends to `out` every position i in [0, n) with hi[i] >= bound,
/// ascending. Returns the count. This is the sorted-sweep filter: the
/// caller has already bounded the prefix whose lo <= probe.hi by binary
/// search, so only the hi condition remains.
inline size_t FilterHiGe(const int64_t* hi, size_t n, int64_t bound,
                         int32_t* out) {
  size_t count = 0;
  size_t i = 0;
#if defined(DSLOG_SIMD_AVX2)
  const __m256i vbound = _mm256_set1_epi64x(bound);
  for (; i + 4 <= n; i += 4) {
    const __m256i vhi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hi + i));
    const __m256i miss = _mm256_cmpgt_epi64(vbound, vhi);
    unsigned mask =
        ~static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(miss))) &
        0xFu;
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out[count++] = static_cast<int32_t>(i + bit);
      mask &= mask - 1;
    }
  }
#elif defined(DSLOG_SIMD_NEON)
  const int64x2_t vbound = vdupq_n_s64(bound);
  for (; i + 2 <= n; i += 2) {
    const int64x2_t vhi = vld1q_s64(hi + i);
    const uint64x2_t hit = vcgeq_s64(vhi, vbound);
    out[count] = static_cast<int32_t>(i);
    count += vgetq_lane_u64(hit, 0) & 1;
    out[count] = static_cast<int32_t>(i + 1);
    count += vgetq_lane_u64(hit, 1) & 1;
  }
#endif
  for (; i < n; ++i) {
    out[count] = static_cast<int32_t>(i);
    count += static_cast<size_t>(hi[i] >= bound);
  }
  return count;
}

}  // namespace simd
}  // namespace dslog

#endif  // DSLOG_COMMON_SIMD_H_
