#include "common/random.h"

#include <cmath>
#include <unordered_set>

namespace dslog {

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  DSLOG_CHECK(k >= 0 && k <= n);
  // For dense samples use a shuffled prefix; for sparse ones, rejection.
  if (k * 3 >= n) {
    std::vector<int64_t> all(n);
    for (int64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  std::unordered_set<int64_t> seen;
  std::vector<int64_t> out;
  out.reserve(k);
  while (static_cast<int64_t>(out.size()) < k) {
    int64_t v = static_cast<int64_t>(Uniform(static_cast<uint64_t>(n)));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace dslog
