// Small string helpers (printf-style Format, Join, human-readable sizes).

#ifndef DSLOG_COMMON_STRINGS_H_
#define DSLOG_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dslog {

/// snprintf into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator using operator<< semantics for ints.
std::string JoinInts(const std::vector<int64_t>& v, const std::string& sep);

/// "12.34 MB"-style rendering of a byte count.
std::string HumanBytes(int64_t bytes);

}  // namespace dslog

#endif  // DSLOG_COMMON_STRINGS_H_
