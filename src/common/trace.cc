#include "common/trace.h"

#ifndef DSLOG_TRACE_DISABLED

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "common/io.h"

namespace dslog {
namespace trace {

namespace {

std::atomic<bool> g_enabled{false};

/// Microseconds since the first call (steady clock, so durations are
/// immune to wall-clock adjustments; trace viewers only need a shared
/// monotonic origin).
int64_t NowUs() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               origin)
      .count();
}

struct TraceEvent {
  const char* name;
  const char* cat;
  int64_t ts_us;
  int64_t dur_us;
  uint32_t tid;
  int num_args;
  const char* arg_keys[Span::kMaxArgs];
  int64_t arg_vals[Span::kMaxArgs];
};

/// One buffer per thread. The mutex is uncontended in steady state (only
/// the owning thread appends); an exporter takes it briefly to copy.
struct EventBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

struct BufferList {
  std::mutex mu;
  std::vector<std::shared_ptr<EventBuffer>> buffers;
};

BufferList& Buffers() {
  static BufferList* g = new BufferList();  // leaked: outlive thread exits
  return *g;
}

/// Small sequential thread ids render better in trace viewers than the
/// opaque std::thread::id hash.
uint32_t ThreadId() noexcept {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

EventBuffer& LocalBuffer() {
  thread_local const std::shared_ptr<EventBuffer> buf = [] {
    auto b = std::make_shared<EventBuffer>();
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mu);
    list.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::string JsonQuote(const char* s) {
  std::string out = "\"";
  for (; s != nullptr && *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

bool Enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Clear() noexcept {
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> block(b->mu);
    b->events.clear();
  }
}

int64_t EventCount() noexcept {
  int64_t n = 0;
  BufferList& list = Buffers();
  std::lock_guard<std::mutex> lock(list.mu);
  for (auto& b : list.buffers) {
    std::lock_guard<std::mutex> block(b->mu);
    n += static_cast<int64_t>(b->events.size());
  }
  return n;
}

std::string ExportJson() {
  // Copy out under the per-buffer locks, format outside them.
  std::vector<TraceEvent> all;
  {
    BufferList& list = Buffers();
    std::lock_guard<std::mutex> lock(list.mu);
    for (auto& b : list.buffers) {
      std::lock_guard<std::mutex> block(b->mu);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  char buf[128];
  for (const TraceEvent& e : all) {
    if (!first) out += ',';
    first = false;
    out += "\n  {\"name\": " + JsonQuote(e.name) +
           ", \"cat\": " + JsonQuote(e.cat) + ", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf),
                  ", \"ts\": %" PRId64 ", \"dur\": %" PRId64
                  ", \"pid\": 1, \"tid\": %u",
                  e.ts_us, e.dur_us, e.tid);
    out += buf;
    if (e.num_args > 0) {
      out += ", \"args\": {";
      for (int i = 0; i < e.num_args; ++i) {
        if (i > 0) out += ", ";
        std::snprintf(buf, sizeof(buf), "%" PRId64, e.arg_vals[i]);
        out += JsonQuote(e.arg_keys[i]) + ": " + buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status WriteJson(const std::string& path) {
  return WriteFileAtomic(path, ExportJson());
}

Span::Span(const char* name, const char* cat) noexcept
    : active_(Enabled()) {
  if (!active_) return;
  name_ = name;
  cat_ = cat;
  start_us_ = NowUs();
}

Span::~Span() {
  if (!active_) return;
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_us = start_us_;
  e.dur_us = NowUs() - start_us_;
  e.tid = ThreadId();
  e.num_args = num_args_;
  for (int i = 0; i < num_args_; ++i) {
    e.arg_keys[i] = arg_keys_[i];
    e.arg_vals[i] = arg_vals_[i];
  }
  EventBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(e);
}

void Span::Arg(const char* key, int64_t value) noexcept {
  if (!active_ || num_args_ >= kMaxArgs) return;
  arg_keys_[num_args_] = key;
  arg_vals_[num_args_] = value;
  ++num_args_;
}

}  // namespace trace
}  // namespace dslog

#else  // DSLOG_TRACE_DISABLED: no out-of-line code to emit

namespace dslog {
namespace trace {
// Everything is defined inline in trace.h when tracing is compiled out.
}  // namespace trace
}  // namespace dslog

#endif  // DSLOG_TRACE_DISABLED
