// RAII scoped trace spans flushed to Chrome trace_event JSON
// (chrome://tracing / Perfetto "load trace" both accept the output).
//
// Two off switches, one per cost class:
//   - Build time: configure with -DDSLOG_TRACE=OFF and the whole API
//     compiles to empty inline bodies (kCompiledIn == false); a Span is an
//     empty object the optimizer deletes, so instrumented code carries
//     zero text.
//   - Run time (default build): spans check one relaxed atomic bool at
//     construction. Tracing starts disabled; queries that request
//     QueryOptions::profile (and tools like dslog_inspect --trace) turn it
//     on around the work they want captured. A disabled span is a single
//     predictable branch — no clock read, no allocation, no atomics in
//     steady state beyond the one relaxed load.
//
// When enabled, completed spans append to a thread-local buffer whose
// mutex is uncontended except while an exporter drains it; buffers are
// owned by a global list via shared_ptr so events survive thread exit.
// Span name/category/arg-key strings must be string literals (stored as
// const char*, formatted only at export). Spans are placed per query, per
// hop, per pool task, per segment resolution — never per row.

#ifndef DSLOG_COMMON_TRACE_H_
#define DSLOG_COMMON_TRACE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dslog {
namespace trace {

#ifdef DSLOG_TRACE_DISABLED

inline constexpr bool kCompiledIn = false;

inline bool Enabled() noexcept { return false; }
inline void SetEnabled(bool) noexcept {}
inline void Clear() noexcept {}
inline int64_t EventCount() noexcept { return 0; }
inline std::string ExportJson() { return "{\"traceEvents\": []}\n"; }
inline Status WriteJson(const std::string& path) {
  return Status::InvalidArgument(
      "tracing compiled out (DSLOG_TRACE=OFF); cannot write " + path);
}

class Span {
 public:
  explicit Span(const char*, const char* = nullptr) noexcept {}
  void Arg(const char*, int64_t) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#else  // tracing compiled in

inline constexpr bool kCompiledIn = true;

/// Process-wide runtime switch (relaxed atomic; default off).
bool Enabled() noexcept;
void SetEnabled(bool on) noexcept;

/// Drops every buffered event (typically called before a capture).
void Clear() noexcept;

/// Number of buffered completed spans across all threads.
int64_t EventCount() noexcept;

/// Renders all buffered events as one Chrome trace_event JSON document
/// ({"traceEvents": [...]}). Does not clear the buffers.
std::string ExportJson();

/// ExportJson() to a file.
Status WriteJson(const std::string& path);

/// One timed scope. `name` and `cat` must be string literals (or
/// otherwise outlive the export).
class Span {
 public:
  static constexpr int kMaxArgs = 4;

  explicit Span(const char* name, const char* cat = "dslog") noexcept;
  ~Span();

  /// Attaches an integer argument shown in the trace viewer. Silently
  /// drops args past kMaxArgs; `key` must be a string literal.
  void Arg(const char* key, int64_t value) noexcept;

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  int num_args_ = 0;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int64_t start_us_ = 0;
  const char* arg_keys_[kMaxArgs];
  int64_t arg_vals_[kMaxArgs];
};

#endif  // DSLOG_TRACE_DISABLED

/// Enables tracing for a lexical scope and restores the previous state on
/// exit. Used by profiled queries: the query engine turns tracing on for
/// the duration of a profile=true query without clobbering a wider
/// capture started by a tool.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) noexcept : prev_(Enabled()) {
    if (on != prev_) SetEnabled(on);
  }
  ~EnabledScope() {
    if (Enabled() != prev_) SetEnabled(prev_);
  }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

}  // namespace trace
}  // namespace dslog

#endif  // DSLOG_COMMON_TRACE_H_
