// 64-bit hashing utilities (FNV-1a core plus combining), used for operation
// signatures and hash joins.

#ifndef DSLOG_COMMON_HASH_H_
#define DSLOG_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dslog {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over a byte range.
inline uint64_t Hash64(const void* data, size_t n, uint64_t seed = kFnvOffset) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t Hash64(std::string_view s, uint64_t seed = kFnvOffset) {
  return Hash64(s.data(), s.size(), seed);
}

/// Hashes a trivially-copyable value by its object representation.
template <typename T>
uint64_t HashValue(const T& v, uint64_t seed = kFnvOffset) {
  static_assert(std::is_trivially_copyable_v<T>);
  return Hash64(&v, sizeof(v), seed);
}

/// Boost-style hash combining with 64-bit constants.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

/// 64-bit hash over 8-byte lanes (MurmurHash64A construction). Roughly an
/// order of magnitude faster than the byte-at-a-time Hash64 on megabyte
/// buffers, which matters for checksumming wide catalog footers at open
/// time. NOT byte-compatible with Hash64; persisted format versions pick
/// one explicitly.
inline uint64_t Hash64Wide(const void* data, size_t n,
                           uint64_t seed = kFnvOffset) {
  constexpr uint64_t kMul = 0xc6a4a7935bd1e995ULL;
  constexpr int kShift = 47;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (static_cast<uint64_t>(n) * kMul);
  const size_t lanes = n / 8;
  for (size_t i = 0; i < lanes; ++i) {
    uint64_t k;
    std::memcpy(&k, p + i * 8, 8);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
  }
  const unsigned char* tail = p + lanes * 8;
  uint64_t t = 0;
  for (size_t i = 0; i < n % 8; ++i) t |= static_cast<uint64_t>(tail[i]) << (8 * i);
  if (n % 8 != 0) {
    h ^= t;
    h *= kMul;
  }
  h ^= h >> kShift;
  h *= kMul;
  h ^= h >> kShift;
  return h;
}

inline uint64_t Hash64Wide(std::string_view s, uint64_t seed = kFnvOffset) {
  return Hash64Wide(s.data(), s.size(), seed);
}

}  // namespace dslog

#endif  // DSLOG_COMMON_HASH_H_
