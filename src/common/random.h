// Deterministic pseudo-random number generation for workload synthesis and
// property tests. SplitMix64 core: fast, well-distributed, reproducible
// across platforms (std::mt19937 distributions are not portable).

#ifndef DSLOG_COMMON_RANDOM_H_
#define DSLOG_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dslog {

/// SplitMix64-based PRNG. Deterministic for a given seed on all platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    DSLOG_CHECK(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    DSLOG_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Gaussian via Box-Muller (mean 0, stddev 1).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// k distinct integers sampled from [0, n) (k <= n), in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  uint64_t state_;
};

}  // namespace dslog

#endif  // DSLOG_COMMON_RANDOM_H_
