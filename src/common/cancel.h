// CancelToken: cooperative cancellation for multi-hop queries and the
// network server's sessions. A token is armed once (Cancel is sticky) and
// polled at coarse boundaries — between query hops, never inside a join
// inner loop — so the steady-state cost of an unarmed token is one relaxed
// atomic load per hop. Any thread may Cancel; any thread may poll.

#ifndef DSLOG_COMMON_CANCEL_H_
#define DSLOG_COMMON_CANCEL_H_

#include <atomic>
#include <cstdint>

namespace dslog {

/// Sticky cancellation flag shared between a requester (a server session's
/// reactor lane, a user thread) and the query executing on its behalf.
/// Lifetime is the caller's problem: QueryOptions carries a non-owning
/// pointer, so the token must outlive every query it is attached to (the
/// server keeps one shared_ptr per in-flight request).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Sticky and idempotent; safe from any thread.
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() has been called (or an armed CancelAfterPolls
  /// threshold has fired). Does not count as a poll.
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The cancellation check the execution layers call at each boundary
  /// (DSLog::ProvQuery before resolving each hop, InSituQuery before
  /// running each hop's θ-join). Counts the poll, applies the test-only
  /// auto-cancel threshold, and returns whether work must stop.
  bool ShouldStop() noexcept {
    const int64_t poll = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    const int64_t after = cancel_after_.load(std::memory_order_relaxed);
    if (after > 0 && poll >= after) Cancel();
    return cancelled();
  }

  /// Test hook: the nth ShouldStop poll (1-based) — and every later one —
  /// observes cancellation, while polls 1..n-1 pass. Lets tests prove a
  /// query stops at an exact inter-hop boundary without racing a timer.
  /// 0 disarms.
  void CancelAfterPolls(int64_t n) noexcept {
    cancel_after_.store(n, std::memory_order_relaxed);
  }

  /// Polls observed so far (test/metrics introspection).
  int64_t polls() const noexcept {
    return polls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> polls_{0};
  std::atomic<int64_t> cancel_after_{0};
};

}  // namespace dslog

#endif  // DSLOG_COMMON_CANCEL_H_
