// Status: error-handling primitive for all fallible DSLog library paths.
// Follows the RocksDB/Arrow idiom: the library never throws; every fallible
// function returns a Status (or a Result<T>, see result.h).

#ifndef DSLOG_COMMON_STATUS_H_
#define DSLOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace dslog {

/// Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kInternal = 8,
  kCancelled = 9,
  kUnavailable = 10,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: an OK marker or a code plus message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The caller (or its session) asked for the work to stop: not a failure
  /// of the data or the system, so callers may retry the identical call.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// Transient capacity refusal (admission control): the request was valid
  /// but the system shed it; retry later. The network server's typed
  /// `Overloaded` response surfaces as this code.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Builds a Status from a raw (code, message) pair — the wire-decoding
  /// path of the network layer. kOk ignores the message.
  static Status FromCode(StatusCode code, std::string msg) {
    return code == StatusCode::kOk ? OK() : Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy with `prefix` prepended to the message, keeping the
  /// code. No-op on OK statuses.
  Status WithMessagePrefix(const std::string& prefix) const {
    return ok() ? *this : Status(code_, prefix + message_);
  }

  /// "<CodeName>: <message>" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace dslog

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// return Status.
#define DSLOG_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::dslog::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // DSLOG_COMMON_STATUS_H_
