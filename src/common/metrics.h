// Process-wide metrics registry: named counters, gauges, and log2-bucket
// histograms behind one global lookup, exported as text or JSON and
// stamped into every BENCH_*.json document (bench/bench_util.cc). This is
// the always-on half of the observability layer (common/trace.h is the
// opt-in half): instruments record at *coarse* granularity — per query,
// per hop, per pool task, per segment resolution — never inside a join
// inner loop, so the steady-state cost is a handful of relaxed atomic
// increments per query.
//
// Write-side contract:
//   - Counter::Add is a relaxed fetch_add on one of a small set of
//     cache-line-padded shards picked by thread, so concurrent writers
//     (pool workers, batch entries) do not bounce one cache line.
//   - Histogram::Record is a relaxed increment of one log2 bucket plus
//     relaxed sum/count updates.
//   - Lookup (Registry::counter("name")) takes a mutex; call sites cache
//     the returned reference in a function-local static so steady state
//     never touches the registry lock.
//
// Read-side contract: Snapshot() loads every cell with relaxed ordering.
// Totals are eventually consistent — a snapshot racing writers may miss
// in-flight increments but never tears a single counter (64-bit atomics).
// Exact, invariant-preserving statistics (e.g. LogStoreStats) keep their
// own per-shard synchronized counters and only mirror into the registry.

#ifndef DSLOG_COMMON_METRICS_H_
#define DSLOG_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dslog {
namespace metrics {

/// Shards per counter. Sized for the fixed query pool (thread id hashes
/// pick a shard); more shards buy nothing once writers stop contending.
inline constexpr int kCounterShards = 8;

/// Monotonic (under Reset) sharded counter.
class Counter {
 public:
  void Add(int64_t delta) noexcept {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }

  /// Relaxed sum over the shards (eventually consistent under writers).
  int64_t Value() const noexcept {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t ShardIndex() noexcept;

  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depths, cache bytes).
class Gauge {
 public:
  void Set(int64_t value) noexcept {
    v_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucket histogram over non-negative int64 values: bucket b counts
/// values v with bit_width(v) == b (bucket 0 counts v <= 0), so bucket b
/// covers [2^(b-1), 2^b - 1]. 64 buckets cover the whole int64 range —
/// fine-grained enough for latency-in-µs and queue-depth distributions.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value) noexcept {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
    // Racy max: good enough for an observability high-water mark.
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  static int BucketFor(int64_t value) noexcept {
    if (value <= 0) return 0;
    int b = 0;
    uint64_t v = static_cast<uint64_t>(value);
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;  // bit_width, in [1, 63] for positive values
  }

  /// Inclusive lower bound of bucket `b` (0 for the zero bucket).
  static int64_t BucketLowerBound(int b) noexcept {
    return b <= 0 ? 0 : int64_t{1} << (b - 1);
  }

  void Reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  int64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const noexcept { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const noexcept {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

// ------------------------------------------------------------- snapshots --

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::array<int64_t, Histogram::kBuckets> buckets{};

  /// Value at quantile q in [0, 1], resolved to the lower bound of the
  /// bucket containing that rank (a conservative estimate).
  int64_t Quantile(double q) const;
  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Point-in-time copy of the whole registry (relaxed loads; see header
/// comment for the consistency contract). Name-sorted for stable output.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<CounterSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(std::string_view name) const;
  const CounterSnapshot* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;
  /// Counter value by name, 0 when absent (the common delta idiom).
  int64_t CounterValue(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {"name": {"count": c, "sum": s, "max": m, "p50": ..., "p95": ...,
  /// "buckets": [[lower_bound, count], ...nonzero only]}}.
  std::string ToJson() const;
  /// Human-readable multi-line dump (one metric per line).
  std::string ToText() const;
};

// -------------------------------------------------------------- registry --

/// Name -> metric map. Metrics are created on first lookup and never
/// removed, so references returned by counter()/gauge()/histogram() stay
/// valid for the process lifetime (cache them in static locals).
class Registry {
 public:
  static Registry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every registered metric (bench harnesses call this between
  /// sweep rows). Concurrent writers keep writing — the zero is relaxed
  /// per cell, like any other update.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps, never the metric cells
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace metrics
}  // namespace dslog

#endif  // DSLOG_COMMON_METRICS_H_
