// Perfect hashing over sealed 64-bit key sets (CHD-style, rank-compacted).
//
// A LogStore segment catalog is immutable once the file is sealed, which is
// the textbook setting for a perfect hash function: n keys map bijectively
// onto positions [0, n) with a handful of bits per key and no chains or
// probes. PhfBuilder runs at seal time over the set of 64-bit key hashes
// and emits one flat, 8-aligned byte block; PhfView binds directly over
// those bytes (typically inside an mmap'ed file) with zero deserialization
// — no allocation, no pointer fixup, O(1) per lookup.
//
// Construction is the classic "compress, hash, displace" scheme: keys are
// thrown into m = ceil(n/4) buckets, buckets are processed largest-first,
// and each bucket searches for a 16-bit displacement under which all of its
// keys land on still-free slots of a table with `slots = n + n/16 + 1`
// entries. The ~6% slot slack is what makes the bounded displacement
// search reliable at scale: in a *minimal* table the last singleton
// buckets face O(1) free slots out of n, and 2^16 random probes fail with
// probability ~e^(-65536/n) each — near-certain failure around 10^6 keys.
// With slack every bucket always sees >= n/16 free slots, so the first
// seed succeeds with overwhelming probability at any n.
//
// The sparse [0, slots) table is compacted back to dense [0, n) by an
// occupancy bitmap plus a rank directory (one u32 cumulative popcount per
// 64-bit bitmap word): Lookup returns rank(slot), the number of occupied
// slots strictly below the key's slot, which is a bijection onto [0, n).
// An 8-bit fingerprint per slot rejects almost all absent keys (expected
// false positive rate < 1/256, since landing on an unoccupied slot also
// rejects) so a miss never touches segment bytes; a fingerprint hit still
// must be confirmed against the stored key by the caller, since a PHF by
// construction maps *every* 64-bit input somewhere.
//
// Cost: 16 bits/bucket displacement (= 4 bits/key at lambda 4), 8.5
// bits/key fingerprints (8 bits x slots/n), ~1.6 bits/key bitmap + rank,
// plus a fixed 48-byte header — about 14 bits/key at catalog scale,
// comfortably under the 16 bits/key budget.
//
// Block layout (all fields little-endian, 8-aligned so every field can be
// read with an aligned memcpy even from a heap-backed file view):
//
//   offset 0   u32  magic "DPHF"
//   offset 4   u32  version (1)
//   offset 8   u64  n       (number of keys)
//   offset 16  u64  slots   (hash table size, n + n/16 + 1; 0 iff n == 0)
//   offset 24  u64  m       (number of buckets)
//   offset 32  u64  seed
//   offset 40  u32  fingerprint_bits (8)
//   offset 44  u32  reserved (0)
//   offset 48  u16  displacement[m]          (padded to 8)
//   ...        u8   fingerprint[slots]       (padded to 8)
//   ...        u64  occupancy[ceil(slots/64)]
//   ...        u32  rank[ceil(slots/64)]     (padded to 8; rank[w] = number
//                                             of occupied slots in words
//                                             [0, w))

#ifndef DSLOG_COMMON_PHF_H_
#define DSLOG_COMMON_PHF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dslog {

/// Builds the serialized PHF block from a set of distinct 64-bit key
/// hashes. Fails (never crashes) on duplicate hashes or if displacement
/// search exhausts its deterministic seed schedule — callers fall back to
/// the ordinary map index in that case.
class PhfBuilder {
 public:
  /// Returns the flat block described in the header comment. `hashes` is
  /// the full key set; the PHF maps hashes[i] to some position in
  /// [0, hashes.size()), bijectively. Deterministic: same input, same bytes.
  static Result<std::string> Build(const std::vector<uint64_t>& hashes);
};

/// Zero-copy view over a serialized PHF block. Copyable; does not own the
/// bytes, which must outlive the view (in LogStore they are part of the
/// mapped file).
class PhfView {
 public:
  PhfView() = default;

  /// Validates structure (magic, version, sizes all consistent with
  /// block.size()) and binds. Returns Corruption on any mismatch.
  static Result<PhfView> Bind(std::string_view block);

  /// Maps a key hash to its dense position in [0, size()), or -1 if the
  /// occupancy bitmap or fingerprint proves the key absent. A non-negative
  /// return is only a *candidate*: the caller must confirm against the
  /// stored key, because absent keys pass the fingerprint with probability
  /// ~2^-fingerprint_bits.
  int64_t Lookup(uint64_t hash) const;

  /// Number of keys (and dense positions).
  uint64_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Index size accounting for observability (inspect, benches).
  uint32_t fingerprint_bits() const { return fingerprint_bits_; }
  double bits_per_key() const {
    return n_ == 0 ? 0.0 : 8.0 * static_cast<double>(block_.size()) /
                               static_cast<double>(n_);
  }

 private:
  std::string_view block_;
  uint64_t n_ = 0;
  uint64_t slots_ = 0;
  uint64_t m_ = 0;
  uint64_t seed_ = 0;
  uint32_t fingerprint_bits_ = 0;
  const unsigned char* disp_ = nullptr;  // m_ u16 entries
  const unsigned char* fp_ = nullptr;    // slots_ u8 entries
  const unsigned char* occ_ = nullptr;   // ceil(slots_/64) u64 words
  const unsigned char* rank_ = nullptr;  // ceil(slots_/64) u32 prefix sums
};

}  // namespace dslog

#endif  // DSLOG_COMMON_PHF_H_
