// Read-only memory-mapped file with RAII unmapping and a heap read
// fallback. The LogStore maps a whole log file once and serves segment
// byte ranges as zero-copy views; platforms (or filesystems) where mmap
// fails fall back to reading the file into an owned buffer, with the same
// view() interface either way.

#ifndef DSLOG_COMMON_MMAP_FILE_H_
#define DSLOG_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace dslog {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Opens `path` read-only and maps it. When `allow_mmap` is false — or
  /// the mapping fails — the file is read into an owned heap buffer
  /// instead; callers cannot tell the difference except via mapped().
  static Result<MmapFile> Open(const std::string& path, bool allow_mmap = true);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }
  /// Byte range [offset, offset + length); caller checks bounds.
  std::string_view view(size_t offset, size_t length) const {
    return {data_ + offset, length};
  }

  /// True when backed by an actual mapping (false: heap fallback or empty).
  bool mapped() const { return addr_ != nullptr; }

 private:
  void Reset() noexcept;

  void* addr_ = nullptr;  // mmap base, nullptr when not mapped
  const char* data_ = nullptr;
  size_t size_ = 0;
  std::string fallback_;  // owns the bytes when not mapped
};

}  // namespace dslog

#endif  // DSLOG_COMMON_MMAP_FILE_H_
