// CHECK macros: invariant assertions that abort with a message on failure.
// Used for programmer errors (violated preconditions inside the library);
// recoverable conditions use Status instead. Supports message streaming:
//   DSLOG_CHECK(n > 0) << "n was " << n;

#ifndef DSLOG_COMMON_CHECK_H_
#define DSLOG_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dslog {
namespace internal {

/// Accumulates a failure message and aborts the process when destroyed.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* file, int line,
                     const char* condition) {
    stream_ << kind << " failed at " << file << ":" << line << ": "
            << condition << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns a streamed CheckFailureStream expression into void so it can sit on
/// the rhs of a ternary whose lhs is (void)0 (the glog "voidify" idiom).
struct Voidify {
  // const& binds both the bare temporary and the result of streaming into it.
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal
}  // namespace dslog

#define DSLOG_CHECK(cond)                                          \
  (cond) ? (void)0                                                 \
         : ::dslog::internal::Voidify() &                          \
               ::dslog::internal::CheckFailureStream(              \
                   "DSLOG_CHECK", __FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define DSLOG_DCHECK(cond) DSLOG_CHECK(true)
#else
#define DSLOG_DCHECK(cond) DSLOG_CHECK(cond)
#endif

#endif  // DSLOG_COMMON_CHECK_H_
