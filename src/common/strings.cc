#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace dslog {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinInts(const std::vector<int64_t>& v, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) out += sep;
    out += std::to_string(v[i]);
  }
  return out;
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return Format("%.2f %s", v, units[u]);
}

}  // namespace dslog
