#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <system_error>
#include <utility>

namespace dslog {

namespace fs = std::filesystem;

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

namespace io_testing {

namespace {
std::function<Status(const std::string&)>& CrashHook() {
  static std::function<Status(const std::string&)> hook;
  return hook;
}
}  // namespace

void SetAtomicWriteCrashHook(
    std::function<Status(const std::string& path)> hook) {
  CrashHook() = std::move(hook);
}

}  // namespace io_testing

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  // pid + process-wide counter: concurrent writers of the same path (e.g.
  // two threads saving one catalog directory) get distinct temp files, so
  // their writes cannot interleave into the published file.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  // write + fsync the temp file, so the data is on disk before the rename
  // can make it visible (otherwise a power loss shortly after the rename
  // could expose an empty or partial destination file).
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot open for write: " + tmp);
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("write failed: " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync failed: " + tmp);
  }
  ::close(fd);
  if (auto& hook = io_testing::CrashHook()) {
    Status simulated = hook(path);
    // A simulated crash stops here: tmp file written, rename never issued.
    if (!simulated.ok()) return simulated;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  // fsync the containing directory so the rename itself is durable.
  std::string dir = fs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int dirfd = ::open(dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return data;
}

Result<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto sz = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size failed: " + path);
  return static_cast<int64_t>(sz);
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories failed: " + path);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove failed: " + path);
  return Status::OK();
}

std::string ScratchDir() {
  static const std::string dir = [] {
    std::string d = (fs::temp_directory_path() /
                     ("dslog_scratch_" + std::to_string(::getpid())))
                        .string();
    std::error_code ec;
    fs::create_directories(d, ec);
    return d;
  }();
  return dir;
}

}  // namespace dslog
