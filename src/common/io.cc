#include "common/io.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace dslog {

namespace fs = std::filesystem;

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return data;
}

Result<int64_t> FileSize(const std::string& path) {
  std::error_code ec;
  auto sz = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size failed: " + path);
  return static_cast<int64_t>(sz);
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories failed: " + path);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove failed: " + path);
  return Status::OK();
}

std::string ScratchDir() {
  static const std::string dir = [] {
    std::string d = (fs::temp_directory_path() /
                     ("dslog_scratch_" + std::to_string(::getpid())))
                        .string();
    std::error_code ec;
    fs::create_directories(d, ec);
    return d;
  }();
  return dir;
}

}  // namespace dslog
