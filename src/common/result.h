// Result<T>: a Status plus a value on success (the Arrow arrow::Result idiom).

#ifndef DSLOG_COMMON_RESULT_H_
#define DSLOG_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace dslog {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. CHECK-fails if the status is OK.
  Result(Status status) : status_(std::move(status)) {
    DSLOG_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; CHECK-fails if not ok().
  const T& value() const& {
    DSLOG_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DSLOG_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DSLOG_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

  /// Moves the contained value out; CHECK-fails if not ok().
  T ValueOrDie() {
    DSLOG_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dslog

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define DSLOG_ASSIGN_OR_RETURN(lhs, expr)             \
  auto DSLOG_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!DSLOG_CONCAT_(_res_, __LINE__).ok())           \
    return DSLOG_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(DSLOG_CONCAT_(_res_, __LINE__)).value()

#define DSLOG_CONCAT_IMPL_(a, b) a##b
#define DSLOG_CONCAT_(a, b) DSLOG_CONCAT_IMPL_(a, b)

#endif  // DSLOG_COMMON_RESULT_H_
