// The ProvRC compressed lineage table (ICDE'24 §IV): rows of interval cells.
// Output attributes are absolute intervals; each input attribute carries
// exactly one surviving representation — an absolute interval (pattern 2)
// or a delta interval relative to one output attribute (pattern 3, with
// delta defined as a_i - b_j). Every row denotes an all-to-all set in the
// (possibly relative) index space — a union-of-Cartesian-products member.

#ifndef DSLOG_PROVRC_COMPRESSED_TABLE_H_
#define DSLOG_PROVRC_COMPRESSED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lineage/lineage_relation.h"
#include "provrc/interval.h"

namespace dslog {

/// One input-attribute cell of a compressed row.
struct InputCell {
  enum class Kind : uint8_t { kAbsolute = 0, kRelative = 1 };

  Kind kind = Kind::kAbsolute;
  /// Referenced output attribute index (valid when kind == kRelative).
  int32_t ref = -1;
  /// Absolute index interval, or the delta interval (a_i - b_ref).
  Interval iv;

  static InputCell Absolute(Interval v) {
    return InputCell{Kind::kAbsolute, -1, v};
  }
  static InputCell Relative(int32_t ref, Interval delta) {
    return InputCell{Kind::kRelative, ref, delta};
  }

  bool is_relative() const { return kind == Kind::kRelative; }
  bool operator==(const InputCell& o) const = default;
};

/// One compressed row: absolute output intervals plus one cell per input
/// attribute.
struct CompressedRow {
  std::vector<Interval> out;
  std::vector<InputCell> in;

  bool operator==(const CompressedRow& o) const = default;
};

/// A compressed lineage table between one output and one input array
/// (the backward representation of §IV.C: predicates push down on outputs).
class CompressedTable {
 public:
  CompressedTable() = default;
  CompressedTable(std::vector<int64_t> out_shape, std::vector<int64_t> in_shape)
      : out_shape_(std::move(out_shape)), in_shape_(std::move(in_shape)) {}

  int out_ndim() const { return static_cast<int>(out_shape_.size()); }
  int in_ndim() const { return static_cast<int>(in_shape_.size()); }
  const std::vector<int64_t>& out_shape() const { return out_shape_; }
  const std::vector<int64_t>& in_shape() const { return in_shape_; }

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<CompressedRow>& rows() const { return rows_; }
  std::vector<CompressedRow>& mutable_rows() { return rows_; }

  void AddRow(CompressedRow row) { rows_.push_back(std::move(row)); }

  /// Expands every row back to individual contribution tuples. Used by the
  /// losslessness property tests and by baselines needing full relations.
  LineageRelation Decompress() const;

  /// Number of (output-cell, input-cell) pairs this table represents,
  /// without materializing them.
  int64_t NumPairsRepresented() const;

  std::string DebugString(int64_t max_rows = 20) const;

  bool operator==(const CompressedTable& o) const = default;

 private:
  std::vector<int64_t> out_shape_;
  std::vector<int64_t> in_shape_;
  std::vector<CompressedRow> rows_;
};

}  // namespace dslog

#endif  // DSLOG_PROVRC_COMPRESSED_TABLE_H_
