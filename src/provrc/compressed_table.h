// The ProvRC compressed lineage table (ICDE'24 §IV): rows of interval cells.
// Output attributes are absolute intervals; each input attribute carries
// exactly one surviving representation — an absolute interval (pattern 2)
// or a delta interval relative to one output attribute (pattern 3, with
// delta defined as a_i - b_j). Every row denotes an all-to-all set in the
// (possibly relative) index space — a union-of-Cartesian-products member.
//
// Physical layout: flat columnar (SoA) arenas, not per-row vectors. A row
// is a fixed stride of out_ndim + in_ndim cells across two int64 arenas
// (interval lo bounds, interval hi bounds) plus one int32 ref arena for the
// input cells, where ref >= 0 names the referenced output attribute of a
// relative cell and ref == -1 marks an absolute cell (the cell *kind* is
// the ref's sign). θ-join kernels scan these arenas directly; the
// CompressedTableView below exposes the same columns whether they live in
// an owned table or in an mmap'd LogStore segment (zero-copy in situ).

#ifndef DSLOG_PROVRC_COMPRESSED_TABLE_H_
#define DSLOG_PROVRC_COMPRESSED_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "lineage/lineage_relation.h"
#include "provrc/interval.h"
#include "provrc/interval_index.h"

namespace dslog {

/// One input-attribute cell of a compressed row (value type: the arenas
/// are the storage, this is the unit they are built from / read back as).
struct InputCell {
  enum class Kind : uint8_t { kAbsolute = 0, kRelative = 1 };

  Kind kind = Kind::kAbsolute;
  /// Referenced output attribute index (valid when kind == kRelative).
  int32_t ref = -1;
  /// Absolute index interval, or the delta interval (a_i - b_ref).
  Interval iv;

  static InputCell Absolute(Interval v) {
    return InputCell{Kind::kAbsolute, -1, v};
  }
  static InputCell Relative(int32_t ref, Interval delta) {
    return InputCell{Kind::kRelative, ref, delta};
  }

  bool is_relative() const { return kind == Kind::kRelative; }
  bool operator==(const InputCell& o) const = default;
};

/// One materialized compressed row: absolute output intervals plus one cell
/// per input attribute. A builder/inspection convenience — storage is the
/// columnar arena, not rows of vectors.
struct CompressedRow {
  std::vector<Interval> out;
  std::vector<InputCell> in;

  bool operator==(const CompressedRow& o) const = default;
};

/// Non-owning columnar view of a compressed table: the scan format of the
/// θ-join kernels. Backed either by a CompressedTable's arenas (view())
/// or borrowed directly from an mmap'd v2 LogStore segment whose on-disk
/// bytes *are* this layout. The backing storage must outlive the view
/// (query hops carry a pin for lazily-decoded segments).
struct CompressedTableView {
  const int64_t* lo = nullptr;   // num_rows * stride() interval lo bounds
  const int64_t* hi = nullptr;   // num_rows * stride() interval hi bounds
  const int32_t* ref = nullptr;  // num_rows * in_ndim; -1 = absolute cell
  const int64_t* out_shape = nullptr;  // out_ndim dims
  const int64_t* in_shape = nullptr;   // in_ndim dims
  int32_t out_ndim = 0;
  int32_t in_ndim = 0;
  int64_t num_rows = 0;

  /// Cells per row across the lo/hi arenas: outputs first, then inputs.
  int64_t stride() const { return out_ndim + in_ndim; }

  Interval out_iv(int64_t r, int32_t k) const {
    const int64_t at = r * stride() + k;
    return {lo[at], hi[at]};
  }
  Interval in_iv(int64_t r, int32_t i) const {
    const int64_t at = r * stride() + out_ndim + i;
    return {lo[at], hi[at]};
  }
  int32_t in_ref(int64_t r, int32_t i) const { return ref[r * in_ndim + i]; }
  bool in_is_relative(int64_t r, int32_t i) const {
    return in_ref(r, i) >= 0;
  }
  InputCell in_cell(int64_t r, int32_t i) const {
    const int32_t rf = in_ref(r, i);
    return rf >= 0 ? InputCell::Relative(rf, in_iv(r, i))
                   : InputCell::Absolute(in_iv(r, i));
  }

  std::span<const int64_t> out_shape_span() const {
    return {out_shape, static_cast<size_t>(out_ndim)};
  }
  std::span<const int64_t> in_shape_span() const {
    return {in_shape, static_cast<size_t>(in_ndim)};
  }

  /// Builds the sorted interval index over output attribute 0 (the
  /// backward-join probe column). O(n log n); cache the result.
  IntervalIndex BuildBackwardIndex() const {
    return IntervalIndex(lo, hi, num_rows, stride());
  }
};

/// A compressed lineage table between one output and one input array
/// (the backward representation of §IV.C: predicates push down on outputs).
/// Owns its columnar arenas; copyable and movable.
class CompressedTable {
 public:
  CompressedTable() = default;
  CompressedTable(std::vector<int64_t> out_shape, std::vector<int64_t> in_shape)
      : out_shape_(std::move(out_shape)), in_shape_(std::move(in_shape)) {}

  CompressedTable(const CompressedTable& o);
  CompressedTable& operator=(const CompressedTable& o);
  CompressedTable(CompressedTable&& o) noexcept;
  CompressedTable& operator=(CompressedTable&& o) noexcept;

  int out_ndim() const { return static_cast<int>(out_shape_.size()); }
  int in_ndim() const { return static_cast<int>(in_shape_.size()); }
  const std::vector<int64_t>& out_shape() const { return out_shape_; }
  const std::vector<int64_t>& in_shape() const { return in_shape_; }

  int64_t num_rows() const { return num_rows_; }
  int64_t stride() const { return out_ndim() + in_ndim(); }

  // Raw arenas (serialization and kernel plumbing).
  const int64_t* lo_data() const { return lo_.data(); }
  const int64_t* hi_data() const { return hi_.data(); }
  const int32_t* ref_data() const { return ref_.data(); }

  // Cell accessors (row r, attribute k/i).
  Interval out_iv(int64_t r, int32_t k) const {
    const size_t at = static_cast<size_t>(r * stride() + k);
    return {lo_[at], hi_[at]};
  }
  Interval in_iv(int64_t r, int32_t i) const {
    const size_t at = static_cast<size_t>(r * stride() + out_ndim() + i);
    return {lo_[at], hi_[at]};
  }
  int32_t in_ref(int64_t r, int32_t i) const {
    return ref_[static_cast<size_t>(r * in_ndim() + i)];
  }
  bool in_is_relative(int64_t r, int32_t i) const { return in_ref(r, i) >= 0; }
  InputCell in_cell(int64_t r, int32_t i) const {
    const int32_t rf = in_ref(r, i);
    return rf >= 0 ? InputCell::Relative(rf, in_iv(r, i))
                   : InputCell::Absolute(in_iv(r, i));
  }

  // Cell mutators (reshape instantiation). Invalidate the cached index.
  void set_out_iv(int64_t r, int32_t k, Interval iv);
  void set_in_iv(int64_t r, int32_t i, Interval iv);

  /// Materializes row r (tests, DebugString, reference oracles).
  CompressedRow Row(int64_t r) const;

  void Reserve(int64_t rows);
  void AddRow(std::span<const Interval> out, std::span<const InputCell> in);
  void AddRow(const CompressedRow& row) {
    AddRow(std::span<const Interval>(row.out),
           std::span<const InputCell>(row.in));
  }
  /// Appends a row from raw per-attribute arrays: out[l] intervals, in[m]
  /// intervals, refs[m] (-1 = absolute). The encoder's flat-pass emitter.
  void AppendRowRaw(const Interval* out, const Interval* in,
                    const int32_t* refs);

  /// Columnar view over this table's arenas (valid until the next mutation
  /// or destruction).
  CompressedTableView view() const;

  /// The sorted interval index over output attribute 0, built lazily on
  /// first use and shared across queries (and across copies of the table).
  /// Thread-safe; mutations invalidate it.
  std::shared_ptr<const IntervalIndex> BackwardIndex() const;

  /// Expands every row back to individual contribution tuples. Used by the
  /// losslessness property tests and by baselines needing full relations.
  LineageRelation Decompress() const;

  /// Number of (output-cell, input-cell) pairs this table represents,
  /// without materializing them.
  int64_t NumPairsRepresented() const;

  std::string DebugString(int64_t max_rows = 20) const;

  bool operator==(const CompressedTable& o) const {
    return out_shape_ == o.out_shape_ && in_shape_ == o.in_shape_ &&
           num_rows_ == o.num_rows_ && lo_ == o.lo_ && hi_ == o.hi_ &&
           ref_ == o.ref_;
  }

 private:
  std::vector<int64_t> out_shape_;
  std::vector<int64_t> in_shape_;
  int64_t num_rows_ = 0;
  std::vector<int64_t> lo_;   // num_rows * stride()
  std::vector<int64_t> hi_;   // num_rows * stride()
  std::vector<int32_t> ref_;  // num_rows * in_ndim

  /// Lazily-built backward-join index. Guarded by index_mu_; immutable
  /// once published, so copies may share it.
  mutable std::mutex index_mu_;
  mutable std::shared_ptr<const IntervalIndex> index_;
};

}  // namespace dslog

#endif  // DSLOG_PROVRC_COMPRESSED_TABLE_H_
