#include "provrc/reshape.h"

#include <sstream>

#include "compress/varint.h"
#include "provrc/serialize.h"

namespace dslog {

namespace {

// Finds the symbolic dimension id for an absolute interval, or -1.
// `same_pos_dim` is the dimension id of the cell's own attribute, preferred
// when several dimensions share the same extent.
int32_t SymbolicDimFor(const Interval& iv, const std::vector<int64_t>& dims,
                       int32_t same_pos_dim) {
  if (iv.lo != 0) return -1;
  if (same_pos_dim >= 0 &&
      iv.hi == dims[static_cast<size_t>(same_pos_dim)] - 1)
    return same_pos_dim;
  for (size_t k = 0; k < dims.size(); ++k)
    if (iv.hi == dims[k] - 1) return static_cast<int32_t>(k);
  return -1;
}

}  // namespace

GeneralizedTable GeneralizedTable::Generalize(const CompressedTable& table) {
  GeneralizedTable gen;
  gen.template_ = table;
  const int l = table.out_ndim();
  const int m = table.in_ndim();
  std::vector<int64_t> dims = table.out_shape();
  dims.insert(dims.end(), table.in_shape().begin(), table.in_shape().end());

  gen.marks_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    std::vector<int32_t> marks(static_cast<size_t>(l + m), -1);
    for (int k = 0; k < l; ++k) {
      marks[static_cast<size_t>(k)] = SymbolicDimFor(table.out_iv(r, k), dims, k);
      if (marks[static_cast<size_t>(k)] >= 0) gen.has_symbolic_ = true;
    }
    for (int k = 0; k < m; ++k) {
      // Only absolute intervals are shape-generalizable (the paper's rule);
      // delta intervals whose magnitude depends on the shape make the table
      // non-reshapable, handled by gen_sig verification failing.
      if (!table.in_is_relative(r, k)) {
        marks[static_cast<size_t>(l + k)] = SymbolicDimFor(
            table.in_iv(r, k), dims, static_cast<int32_t>(l + k));
        if (marks[static_cast<size_t>(l + k)] >= 0) gen.has_symbolic_ = true;
      }
    }
    gen.marks_.push_back(std::move(marks));
  }
  return gen;
}

Result<CompressedTable> GeneralizedTable::Instantiate(
    const std::vector<int64_t>& out_shape,
    const std::vector<int64_t>& in_shape) const {
  const int l = static_cast<int>(template_.out_shape().size());
  const int m = static_cast<int>(template_.in_shape().size());
  if (static_cast<int>(out_shape.size()) != l ||
      static_cast<int>(in_shape.size()) != m)
    return Status::InvalidArgument("Instantiate: arity mismatch");

  std::vector<int64_t> dims = out_shape;
  dims.insert(dims.end(), in_shape.begin(), in_shape.end());

  // Rebuild the template under the target shapes, then patch the symbolic
  // cells in place for the target dims.
  CompressedTable out(out_shape, in_shape);
  out.Reserve(template_.num_rows());
  for (int64_t r = 0; r < template_.num_rows(); ++r)
    out.AddRow(template_.Row(r));
  for (int64_t r = 0; r < template_.num_rows(); ++r) {
    const std::vector<int32_t>& marks = marks_[static_cast<size_t>(r)];
    for (int k = 0; k < l; ++k) {
      int32_t dim = marks[static_cast<size_t>(k)];
      if (dim >= 0)
        out.set_out_iv(r, k, {0, dims[static_cast<size_t>(dim)] - 1});
    }
    for (int k = 0; k < m; ++k) {
      int32_t dim = marks[static_cast<size_t>(l + k)];
      if (dim >= 0)
        out.set_in_iv(r, k, {0, dims[static_cast<size_t>(dim)] - 1});
    }
  }
  return out;
}

void GeneralizedTable::AppendTo(std::string* dst) const {
  PutLengthPrefixed(dst, SerializeCompressedTable(template_));
  // marks_ dimensions are implied by the template (rows x (l + m)); each
  // mark is a small dimension id or -1, so zigzag varints stay one byte.
  for (const std::vector<int32_t>& row : marks_)
    for (int32_t mark : row) PutVarintSigned(dst, mark);
}

Result<GeneralizedTable> GeneralizedTable::ParseFrom(std::string_view src,
                                                     size_t* pos) {
  std::string table_bytes;
  if (!GetLengthPrefixed(src, pos, &table_bytes))
    return Status::Corruption("GeneralizedTable: truncated template");
  GeneralizedTable gen;
  DSLOG_ASSIGN_OR_RETURN(gen.template_,
                         DeserializeCompressedTable(table_bytes));
  const size_t arity = static_cast<size_t>(gen.template_.out_ndim()) +
                       static_cast<size_t>(gen.template_.in_ndim());
  gen.marks_.reserve(static_cast<size_t>(gen.template_.num_rows()));
  for (int64_t r = 0; r < gen.template_.num_rows(); ++r) {
    std::vector<int32_t> row(arity, -1);
    for (size_t k = 0; k < arity; ++k) {
      int64_t mark;
      if (!GetVarintSigned(src, pos, &mark))
        return Status::Corruption("GeneralizedTable: truncated marks");
      row[k] = static_cast<int32_t>(mark);
      if (row[k] >= 0) gen.has_symbolic_ = true;
    }
    gen.marks_.push_back(std::move(row));
  }
  return gen;
}

std::string GeneralizedTable::DebugString() const {
  std::ostringstream os;
  os << "GeneralizedTable(symbolic=" << (has_symbolic_ ? "yes" : "no")
     << ")\n"
     << template_.DebugString();
  return os.str();
}

}  // namespace dslog
