// Sorted interval index: rows ordered by interval lo with an implicit
// binary tree of subtree max-hi bounds, so a probe enumerates exactly the
// overlapping rows in O(log n + hits) instead of scanning the table. This
// is the per-table index behind the indexed θ-join kernels (§V.B step 1):
// the sort the old per-query sweep (query/interval_sweep.h) paid on every
// join is paid once per table and shared by every query against it.
//
// Beyond the tree probe, the sorted columns support two vectorized access
// paths (common/simd.h) a probe can be served by:
//   kIndexProbe  — the pruned tree descent: O(log n + hits), the win when
//                  few rows overlap.
//   kSortedSweep — binary-search the lo-prefix with lo <= probe.hi, then a
//                  SIMD filter of that prefix on hi >= probe.lo.
//   kFullScan    — one SIMD overlap filter over all n sorted entries; no
//                  search, no tree, peak throughput when most rows hit.
// All three emit the same rows in the same (ascending-position, i.e.
// nondecreasing-lo) order, so results built from them are bit-identical —
// the θ-join planner (query/join_planner.h) may pick per probe freely.
//
// The index stores row *ids*, not bytes: it works identically over an
// owned CompressedTable arena and over a CompressedTableView borrowed from
// an mmap'd LogStore segment (the caller owns keeping the columns alive).

#ifndef DSLOG_PROVRC_INTERVAL_INDEX_H_
#define DSLOG_PROVRC_INTERVAL_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "provrc/interval.h"

namespace dslog {

/// How a probe enumerates the index (see the header comment). The planner
/// chooses one per probe; every path yields identical emissions.
enum class AccessPath : uint8_t {
  kIndexProbe = 0,
  kSortedSweep = 1,
  kFullScan = 2,
};

/// Summary statistics of one interval column (the θ-join probe column).
/// Computed exactly at index build time, persisted per segment in v3
/// LogStore footers, and consumed by the join planner's cost model.
struct IntervalColumnStats {
  int64_t row_count = -1;  // -1 = unknown
  int64_t min_lo = 0;
  int64_t max_lo = 0;
  int64_t max_hi = -1;
  int64_t sum_width = -1;  // sum over rows of (hi - lo + 1); -1 = unknown

  bool valid() const { return row_count >= 0 && sum_width >= 0; }
  double avg_width() const {
    return row_count > 0 ? static_cast<double>(sum_width) /
                               static_cast<double>(row_count)
                         : 0.0;
  }
};

class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// Builds over `n` intervals read from strided columns: interval r is
  /// [lo[r * stride], hi[r * stride]]. Pass stride = 1 for a dense array.
  IntervalIndex(const int64_t* lo, const int64_t* hi, int64_t n,
                int64_t stride);

  int64_t size() const { return static_cast<int64_t>(lo_.size()); }
  bool empty() const { return lo_.empty(); }

  /// Exact stats of the indexed column (valid() is false when empty).
  const IntervalColumnStats& stats() const { return stats_; }

  // Sorted columns (ascending lo) and the row id at each sorted position —
  // the arrays the sweep/scan filters and the planner read directly.
  const int64_t* sorted_lo() const { return lo_.data(); }
  const int64_t* sorted_hi() const { return hi_.data(); }
  const int64_t* row_ids() const { return row_.data(); }

  /// Approximate resident bytes (decode-cache charge accounting).
  int64_t bytes() const {
    return static_cast<int64_t>(
        sizeof(*this) + (lo_.capacity() + hi_.capacity() + row_.capacity() +
                         tree_.capacity()) *
                            sizeof(int64_t));
  }

  /// Calls fn(row_id) for every indexed interval intersecting `probe`, in
  /// nondecreasing-lo order. Each overlapping row is emitted exactly once.
  /// (The tree-probe path; equivalent to ForEachOverlapping with
  /// AccessPath::kIndexProbe.)
  template <typename Fn>
  void ForEachOverlapping(const Interval& probe, Fn&& fn) const {
    if (lo_.empty() || probe.hi < lo_.front()) return;
    Visit(1, 0, leaf_count_, probe, fn);
  }

  /// Path-dispatched overlap enumeration: identical emissions to the
  /// two-argument overload for every path. The sweep/scan paths compact
  /// candidate positions into `*scratch` (resized as needed, reused across
  /// calls) with the SIMD filters before invoking fn.
  template <typename Fn>
  void ForEachOverlapping(const Interval& probe, AccessPath path,
                          std::vector<int32_t>* scratch, Fn&& fn) const {
    if (lo_.empty() || probe.hi < lo_.front()) return;
    switch (path) {
      case AccessPath::kIndexProbe:
        Visit(1, 0, leaf_count_, probe, fn);
        return;
      case AccessPath::kSortedSweep: {
        // Prefix with lo <= probe.hi by binary search, then one SIMD
        // filter of that prefix on the remaining hi >= probe.lo test.
        const size_t prefix = static_cast<size_t>(
            std::upper_bound(lo_.begin(), lo_.end(), probe.hi) - lo_.begin());
        if (scratch->size() < prefix) scratch->resize(prefix);
        const size_t hits =
            simd::FilterHiGe(hi_.data(), prefix, probe.lo, scratch->data());
        for (size_t c = 0; c < hits; ++c)
          fn(row_[static_cast<size_t>((*scratch)[c])]);
        return;
      }
      case AccessPath::kFullScan: {
        if (scratch->size() < lo_.size()) scratch->resize(lo_.size());
        const size_t hits =
            simd::FilterOverlapping(lo_.data(), hi_.data(), lo_.size(),
                                    probe.lo, probe.hi, scratch->data());
        for (size_t c = 0; c < hits; ++c)
          fn(row_[static_cast<size_t>((*scratch)[c])]);
        return;
      }
    }
  }

 private:
  // Recursive descent over the implicit tree. Node `node` covers sorted
  // positions [begin, begin + width); width is a power of two. Prunes a
  // subtree when its smallest lo already exceeds probe.hi (sorted order)
  // or its largest hi falls short of probe.lo (the tree bound). A leaf
  // that survives both prunes is an overlap by construction.
  template <typename Fn>
  void Visit(size_t node, size_t begin, size_t width, const Interval& probe,
             Fn&& fn) const {
    if (begin >= lo_.size() || lo_[begin] > probe.hi) return;
    if (tree_[node] < probe.lo) return;
    if (width == 1) {
      fn(row_[begin]);
      return;
    }
    const size_t half = width / 2;
    Visit(2 * node, begin, half, probe, fn);
    Visit(2 * node + 1, begin + half, half, probe, fn);
  }

  std::vector<int64_t> lo_;   // sorted nondecreasing
  std::vector<int64_t> hi_;   // aligned with lo_
  std::vector<int64_t> row_;  // original row id per sorted position
  /// Heap-ordered max-hi per node; leaves padded with INT64_MIN.
  std::vector<int64_t> tree_;
  size_t leaf_count_ = 0;  // power-of-two leaf span of the tree
  IntervalColumnStats stats_;
};

}  // namespace dslog

#endif  // DSLOG_PROVRC_INTERVAL_INDEX_H_
