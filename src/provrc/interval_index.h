// Sorted interval index: rows ordered by interval lo with an implicit
// binary tree of subtree max-hi bounds, so a probe enumerates exactly the
// overlapping rows in O(log n + hits) instead of scanning the table. This
// is the per-table index behind the indexed θ-join kernels (§V.B step 1):
// the sort the old per-query sweep (query/interval_sweep.h) paid on every
// join is paid once per table and shared by every query against it.
//
// The index stores row *ids*, not bytes: it works identically over an
// owned CompressedTable arena and over a CompressedTableView borrowed from
// an mmap'd LogStore segment (the caller owns keeping the columns alive).

#ifndef DSLOG_PROVRC_INTERVAL_INDEX_H_
#define DSLOG_PROVRC_INTERVAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "provrc/interval.h"

namespace dslog {

class IntervalIndex {
 public:
  IntervalIndex() = default;

  /// Builds over `n` intervals read from strided columns: interval r is
  /// [lo[r * stride], hi[r * stride]]. Pass stride = 1 for a dense array.
  IntervalIndex(const int64_t* lo, const int64_t* hi, int64_t n,
                int64_t stride);

  int64_t size() const { return static_cast<int64_t>(lo_.size()); }
  bool empty() const { return lo_.empty(); }

  /// Approximate resident bytes (decode-cache charge accounting).
  int64_t bytes() const {
    return static_cast<int64_t>(
        sizeof(*this) + (lo_.capacity() + hi_.capacity() + row_.capacity() +
                         tree_.capacity()) *
                            sizeof(int64_t));
  }

  /// Calls fn(row_id) for every indexed interval intersecting `probe`, in
  /// nondecreasing-lo order. Each overlapping row is emitted exactly once.
  template <typename Fn>
  void ForEachOverlapping(const Interval& probe, Fn&& fn) const {
    if (lo_.empty() || probe.hi < lo_.front()) return;
    Visit(1, 0, leaf_count_, probe, fn);
  }

 private:
  // Recursive descent over the implicit tree. Node `node` covers sorted
  // positions [begin, begin + width); width is a power of two. Prunes a
  // subtree when its smallest lo already exceeds probe.hi (sorted order)
  // or its largest hi falls short of probe.lo (the tree bound). A leaf
  // that survives both prunes is an overlap by construction.
  template <typename Fn>
  void Visit(size_t node, size_t begin, size_t width, const Interval& probe,
             Fn&& fn) const {
    if (begin >= lo_.size() || lo_[begin] > probe.hi) return;
    if (tree_[node] < probe.lo) return;
    if (width == 1) {
      fn(row_[begin]);
      return;
    }
    const size_t half = width / 2;
    Visit(2 * node, begin, half, probe, fn);
    Visit(2 * node + 1, begin + half, half, probe, fn);
  }

  std::vector<int64_t> lo_;   // sorted nondecreasing
  std::vector<int64_t> hi_;   // aligned with lo_
  std::vector<int64_t> row_;  // original row id per sorted position
  /// Heap-ordered max-hi per node; leaves padded with INT64_MIN.
  std::vector<int64_t> tree_;
  size_t leaf_count_ = 0;  // power-of-two leaf span of the tree
};

}  // namespace dslog

#endif  // DSLOG_PROVRC_INTERVAL_INDEX_H_
