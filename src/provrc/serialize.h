// On-disk serialization of compressed lineage tables. The plain format is
// what Table VII reports as "ProvRC"; the Deflate-wrapped variant is
// "ProvRC-GZip" (the paper's default for DSLog storage).

#ifndef DSLOG_PROVRC_SERIALIZE_H_
#define DSLOG_PROVRC_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "provrc/compressed_table.h"

namespace dslog {

/// Compact binary encoding: varint/zigzag interval cells with per-attribute
/// cross-row delta coding (so even incompressible tables like Sort stay
/// close to entropy).
std::string SerializeCompressedTable(const CompressedTable& table);

/// Inverse of SerializeCompressedTable. Takes any contiguous byte view
/// (std::string converts implicitly), so segments of a memory-mapped
/// LogStore file decode without an intermediate copy.
Result<CompressedTable> DeserializeCompressedTable(std::string_view data);

/// Deflate-wrapped serialization (ProvRC-GZip).
std::string SerializeCompressedTableGzip(const CompressedTable& table);

/// Inverse of SerializeCompressedTableGzip.
Result<CompressedTable> DeserializeCompressedTableGzip(std::string_view data);

}  // namespace dslog

#endif  // DSLOG_PROVRC_SERIALIZE_H_
