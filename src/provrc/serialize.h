// On-disk serialization of compressed lineage tables.
//
// Two codecs:
//  - PRC1 (varint): the compact encoding of Table VII — zigzag varint
//    interval cells with per-attribute cross-row delta coding. The plain
//    form is the paper's "ProvRC"; Deflate-wrapped it is "ProvRC-GZip"
//    (the v1 LogStore segment payload). Always decodes to an owned table.
//  - PRC2 (columnar): a flat little-endian image of the SoA arenas — the
//    exact in-memory scan format of the θ-join kernels. A v2 LogStore
//    segment in this layout is queried zero-copy: BorrowColumnarTable
//    returns a CompressedTableView aliasing the mapped bytes, no decode,
//    no per-row allocation. Bigger on disk than PRC1; that trade (bytes
//    for scan latency) is the point.

#ifndef DSLOG_PROVRC_SERIALIZE_H_
#define DSLOG_PROVRC_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "provrc/compressed_table.h"

namespace dslog {

/// Compact binary encoding: varint/zigzag interval cells with per-attribute
/// cross-row delta coding (so even incompressible tables like Sort stay
/// close to entropy).
std::string SerializeCompressedTable(const CompressedTable& table);

/// Inverse of SerializeCompressedTable. Takes any contiguous byte view
/// (std::string converts implicitly), so segments of a memory-mapped
/// LogStore file decode without an intermediate copy.
Result<CompressedTable> DeserializeCompressedTable(std::string_view data);

/// Deflate-wrapped serialization (ProvRC-GZip).
std::string SerializeCompressedTableGzip(const CompressedTable& table);

/// Inverse of SerializeCompressedTableGzip.
Result<CompressedTable> DeserializeCompressedTableGzip(std::string_view data);

// ------------------------------------------------------- columnar (PRC2) --

/// Flat columnar image of the table: 8-byte-aligned header (magic, arity,
/// row count), shape dims, then the lo/hi/ref arenas verbatim. The bytes
/// are the scan format — a reader with an aligned mapping borrows them
/// in place. Deterministic (byte-identical for equal tables).
std::string SerializeCompressedTableColumnar(const CompressedTable& table);

/// Zero-copy borrow: validates the image (structure, sizes, ref bounds)
/// and returns a view aliasing `data`. The caller must keep `data` alive
/// for the view's lifetime. Fails with kCorruption on malformed bytes and
/// kNotSupported when `data` is not 8-byte aligned (fall back to
/// DeserializeCompressedTableColumnar, which copies).
Result<CompressedTableView> BorrowColumnarTable(std::string_view data);

/// Owned decode of a columnar image (alignment-agnostic fallback, and the
/// path for callers that need a CompressedTable rather than a view).
Result<CompressedTable> DeserializeCompressedTableColumnar(
    std::string_view data);


}  // namespace dslog

#endif  // DSLOG_PROVRC_SERIALIZE_H_
