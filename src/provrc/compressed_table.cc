#include "provrc/compressed_table.h"

#include <sstream>

#include "common/check.h"

namespace dslog {

namespace {

// Enumerates the Cartesian product of `intervals` invoking fn(point vector).
template <typename Fn>
void ForEachPoint(const std::vector<Interval>& intervals, Fn&& fn) {
  std::vector<int64_t> point(intervals.size());
  for (size_t i = 0; i < intervals.size(); ++i) point[i] = intervals[i].lo;
  while (true) {
    fn(point);
    size_t k = intervals.size();
    while (k > 0) {
      --k;
      if (point[k] < intervals[k].hi) {
        ++point[k];
        for (size_t j = k + 1; j < intervals.size(); ++j) point[j] = intervals[j].lo;
        break;
      }
      if (k == 0) return;
    }
    if (intervals.empty()) return;
  }
}

}  // namespace

LineageRelation CompressedTable::Decompress() const {
  LineageRelation rel(out_ndim(), in_ndim());
  rel.set_shapes(out_shape_, in_shape_);
  std::vector<int64_t> in_point(static_cast<size_t>(in_ndim()));
  for (const CompressedRow& row : rows_) {
    DSLOG_DCHECK(static_cast<int>(row.out.size()) == out_ndim());
    DSLOG_DCHECK(static_cast<int>(row.in.size()) == in_ndim());
    ForEachPoint(row.out, [&](const std::vector<int64_t>& out_point) {
      // Resolve per-output-point input intervals (de-relativize).
      std::vector<Interval> in_ivs(row.in.size());
      for (size_t i = 0; i < row.in.size(); ++i) {
        const InputCell& cell = row.in[i];
        if (cell.is_relative()) {
          int64_t b = out_point[static_cast<size_t>(cell.ref)];
          in_ivs[i] = {b + cell.iv.lo, b + cell.iv.hi};
        } else {
          in_ivs[i] = cell.iv;
        }
      }
      ForEachPoint(in_ivs, [&](const std::vector<int64_t>& ip) {
        rel.Add(out_point, ip);
      });
    });
  }
  return rel;
}

int64_t CompressedTable::NumPairsRepresented() const {
  int64_t total = 0;
  for (const CompressedRow& row : rows_) {
    int64_t out_cells = 1;
    for (const Interval& iv : row.out) out_cells *= iv.width();
    int64_t in_cells = 1;
    for (const InputCell& cell : row.in) in_cells *= cell.iv.width();
    total += out_cells * in_cells;
  }
  return total;
}

std::string CompressedTable::DebugString(int64_t max_rows) const {
  std::ostringstream os;
  os << "CompressedTable(out=" << out_ndim() << "d, in=" << in_ndim()
     << "d, rows=" << num_rows() << ")\n";
  int64_t n = std::min<int64_t>(num_rows(), max_rows);
  for (int64_t i = 0; i < n; ++i) {
    const CompressedRow& row = rows_[static_cast<size_t>(i)];
    os << "  (";
    for (size_t k = 0; k < row.out.size(); ++k) {
      if (k) os << ", ";
      os << row.out[k].ToString();
    }
    os << " | ";
    for (size_t k = 0; k < row.in.size(); ++k) {
      if (k) os << ", ";
      const InputCell& c = row.in[k];
      if (c.is_relative())
        os << "b" << c.ref << "+" << c.iv.ToString();
      else
        os << c.iv.ToString();
    }
    os << ")\n";
  }
  if (num_rows() > max_rows) os << "  ...\n";
  return os.str();
}

}  // namespace dslog
