#include "provrc/compressed_table.h"

#include <sstream>

#include "common/check.h"

namespace dslog {

namespace {

// Enumerates the Cartesian product of `intervals` invoking fn(point vector).
template <typename Fn>
void ForEachPoint(const std::vector<Interval>& intervals, Fn&& fn) {
  std::vector<int64_t> point(intervals.size());
  for (size_t i = 0; i < intervals.size(); ++i) point[i] = intervals[i].lo;
  while (true) {
    fn(point);
    size_t k = intervals.size();
    while (k > 0) {
      --k;
      if (point[k] < intervals[k].hi) {
        ++point[k];
        for (size_t j = k + 1; j < intervals.size(); ++j)
          point[j] = intervals[j].lo;
        break;
      }
      if (k == 0) return;
    }
    if (intervals.empty()) return;
  }
}

}  // namespace

CompressedTable::CompressedTable(const CompressedTable& o)
    : out_shape_(o.out_shape_),
      in_shape_(o.in_shape_),
      num_rows_(o.num_rows_),
      lo_(o.lo_),
      hi_(o.hi_),
      ref_(o.ref_) {
  std::lock_guard<std::mutex> lock(o.index_mu_);
  index_ = o.index_;  // immutable once built; safe to share
}

CompressedTable& CompressedTable::operator=(const CompressedTable& o) {
  if (this == &o) return *this;
  out_shape_ = o.out_shape_;
  in_shape_ = o.in_shape_;
  num_rows_ = o.num_rows_;
  lo_ = o.lo_;
  hi_ = o.hi_;
  ref_ = o.ref_;
  std::scoped_lock lock(index_mu_, o.index_mu_);
  index_ = o.index_;
  return *this;
}

CompressedTable::CompressedTable(CompressedTable&& o) noexcept
    : out_shape_(std::move(o.out_shape_)),
      in_shape_(std::move(o.in_shape_)),
      num_rows_(o.num_rows_),
      lo_(std::move(o.lo_)),
      hi_(std::move(o.hi_)),
      ref_(std::move(o.ref_)) {
  std::lock_guard<std::mutex> lock(o.index_mu_);
  index_ = std::move(o.index_);
  o.num_rows_ = 0;
}

CompressedTable& CompressedTable::operator=(CompressedTable&& o) noexcept {
  if (this == &o) return *this;
  out_shape_ = std::move(o.out_shape_);
  in_shape_ = std::move(o.in_shape_);
  num_rows_ = o.num_rows_;
  lo_ = std::move(o.lo_);
  hi_ = std::move(o.hi_);
  ref_ = std::move(o.ref_);
  std::scoped_lock lock(index_mu_, o.index_mu_);
  index_ = std::move(o.index_);
  o.num_rows_ = 0;
  return *this;
}

void CompressedTable::set_out_iv(int64_t r, int32_t k, Interval iv) {
  const size_t at = static_cast<size_t>(r * stride() + k);
  lo_[at] = iv.lo;
  hi_[at] = iv.hi;
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.reset();
}

void CompressedTable::set_in_iv(int64_t r, int32_t i, Interval iv) {
  const size_t at = static_cast<size_t>(r * stride() + out_ndim() + i);
  lo_[at] = iv.lo;
  hi_[at] = iv.hi;
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.reset();
}

CompressedRow CompressedTable::Row(int64_t r) const {
  CompressedRow row;
  row.out.reserve(static_cast<size_t>(out_ndim()));
  for (int k = 0; k < out_ndim(); ++k) row.out.push_back(out_iv(r, k));
  row.in.reserve(static_cast<size_t>(in_ndim()));
  for (int i = 0; i < in_ndim(); ++i) row.in.push_back(in_cell(r, i));
  return row;
}

void CompressedTable::Reserve(int64_t rows) {
  lo_.reserve(static_cast<size_t>(rows * stride()));
  hi_.reserve(static_cast<size_t>(rows * stride()));
  ref_.reserve(static_cast<size_t>(rows * in_ndim()));
}

void CompressedTable::AddRow(std::span<const Interval> out,
                             std::span<const InputCell> in) {
  DSLOG_DCHECK(static_cast<int>(out.size()) == out_ndim());
  DSLOG_DCHECK(static_cast<int>(in.size()) == in_ndim());
  for (const Interval& iv : out) {
    lo_.push_back(iv.lo);
    hi_.push_back(iv.hi);
  }
  for (const InputCell& cell : in) {
    lo_.push_back(cell.iv.lo);
    hi_.push_back(cell.iv.hi);
    ref_.push_back(cell.is_relative() ? cell.ref : -1);
  }
  ++num_rows_;
  std::lock_guard<std::mutex> lock(index_mu_);
  index_.reset();
}

void CompressedTable::AppendRowRaw(const Interval* out, const Interval* in,
                                   const int32_t* refs) {
  for (int k = 0; k < out_ndim(); ++k) {
    lo_.push_back(out[k].lo);
    hi_.push_back(out[k].hi);
  }
  for (int i = 0; i < in_ndim(); ++i) {
    lo_.push_back(in[i].lo);
    hi_.push_back(in[i].hi);
    ref_.push_back(refs[i]);
  }
  ++num_rows_;
  // No index invalidation: the encoder appends before any query can have
  // built an index, and AddRow (the general path) resets it anyway.
}

CompressedTableView CompressedTable::view() const {
  CompressedTableView v;
  v.lo = lo_.data();
  v.hi = hi_.data();
  v.ref = ref_.data();
  v.out_shape = out_shape_.data();
  v.in_shape = in_shape_.data();
  v.out_ndim = static_cast<int32_t>(out_ndim());
  v.in_ndim = static_cast<int32_t>(in_ndim());
  v.num_rows = num_rows_;
  return v;
}

std::shared_ptr<const IntervalIndex> CompressedTable::BackwardIndex() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (!index_)
    index_ = std::make_shared<const IntervalIndex>(lo_.data(), hi_.data(),
                                                   num_rows_, stride());
  return index_;
}

LineageRelation CompressedTable::Decompress() const {
  LineageRelation rel(out_ndim(), in_ndim());
  rel.set_shapes(out_shape_, in_shape_);
  const int l = out_ndim();
  const int m = in_ndim();
  std::vector<Interval> out_ivs(static_cast<size_t>(l));
  std::vector<Interval> in_ivs(static_cast<size_t>(m));
  for (int64_t r = 0; r < num_rows_; ++r) {
    for (int k = 0; k < l; ++k) out_ivs[static_cast<size_t>(k)] = out_iv(r, k);
    ForEachPoint(out_ivs, [&](const std::vector<int64_t>& out_point) {
      // Resolve per-output-point input intervals (de-relativize).
      for (int i = 0; i < m; ++i) {
        const Interval iv = in_iv(r, i);
        const int32_t rf = in_ref(r, i);
        if (rf >= 0) {
          const int64_t b = out_point[static_cast<size_t>(rf)];
          in_ivs[static_cast<size_t>(i)] = {b + iv.lo, b + iv.hi};
        } else {
          in_ivs[static_cast<size_t>(i)] = iv;
        }
      }
      ForEachPoint(in_ivs, [&](const std::vector<int64_t>& ip) {
        rel.Add(out_point, ip);
      });
    });
  }
  return rel;
}

int64_t CompressedTable::NumPairsRepresented() const {
  int64_t total = 0;
  const int64_t w = stride();
  for (int64_t r = 0; r < num_rows_; ++r) {
    int64_t cells = 1;
    for (int64_t k = 0; k < w; ++k) {
      const size_t at = static_cast<size_t>(r * w + k);
      cells *= hi_[at] - lo_[at] + 1;
    }
    total += cells;
  }
  return total;
}

std::string CompressedTable::DebugString(int64_t max_rows) const {
  std::ostringstream os;
  os << "CompressedTable(out=" << out_ndim() << "d, in=" << in_ndim()
     << "d, rows=" << num_rows() << ")\n";
  int64_t n = std::min<int64_t>(num_rows(), max_rows);
  for (int64_t r = 0; r < n; ++r) {
    os << "  (";
    for (int k = 0; k < out_ndim(); ++k) {
      if (k) os << ", ";
      os << out_iv(r, k).ToString();
    }
    os << " | ";
    for (int i = 0; i < in_ndim(); ++i) {
      if (i) os << ", ";
      const int32_t rf = in_ref(r, i);
      if (rf >= 0)
        os << "b" << rf << "+" << in_iv(r, i).ToString();
      else
        os << in_iv(r, i).ToString();
    }
    os << ")\n";
  }
  if (num_rows() > max_rows) os << "  ...\n";
  return os.str();
}

}  // namespace dslog
