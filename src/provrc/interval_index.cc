#include "provrc/interval_index.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/check.h"

namespace dslog {

IntervalIndex::IntervalIndex(const int64_t* lo, const int64_t* hi, int64_t n,
                             int64_t stride) {
  if (n <= 0) return;
  // Candidate positions compact into int32 buffers (common/simd.h).
  DSLOG_CHECK(n <= std::numeric_limits<int32_t>::max())
      << "interval index over >2^31 rows";
  const size_t count = static_cast<size_t>(n);
  // Gather into flat items first so the sort runs over contiguous memory
  // instead of strided arena loads through an indirection.
  struct Item {
    int64_t lo;
    int64_t hi;
    int64_t row;
  };
  std::vector<Item> items(count);
  for (size_t i = 0; i < count; ++i)
    items[i] = {lo[static_cast<int64_t>(i) * stride],
                hi[static_cast<int64_t>(i) * stride],
                static_cast<int64_t>(i)};
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.lo < b.lo; });

  lo_.resize(count);
  hi_.resize(count);
  row_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    lo_[i] = items[i].lo;
    hi_[i] = items[i].hi;
    row_[i] = items[i].row;
  }

  leaf_count_ = std::bit_ceil(count);
  tree_.assign(2 * leaf_count_, std::numeric_limits<int64_t>::min());
  for (size_t i = 0; i < count; ++i) tree_[leaf_count_ + i] = hi_[i];
  for (size_t node = leaf_count_ - 1; node >= 1; --node)
    tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);

  // Exact column stats for the join planner, one pass over the sorted
  // columns (the sort already paid the cache traffic).
  stats_.row_count = n;
  stats_.min_lo = lo_.front();
  stats_.max_lo = lo_.back();
  stats_.max_hi = tree_[1];
  int64_t sum_width = 0;
  for (size_t i = 0; i < count; ++i) sum_width += hi_[i] - lo_[i] + 1;
  stats_.sum_width = sum_width;
}

}  // namespace dslog
