#include "provrc/provrc.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace dslog {

namespace {

// Working state over flat interval arrays (row-major: row r, attr k at
// r * width + k). Rows shrink as passes merge them, so each pass gathers
// surviving rows into fresh arrays.
struct WorkState {
  int l = 0;  // output arity
  int m = 0;  // input arity
  int64_t nrows = 0;
  std::vector<Interval> outs;   // nrows * l
  std::vector<Interval> ins;    // nrows * m (absolute intervals)
  // Step-2 state (empty during step 1):
  std::vector<uint32_t> masks;   // nrows * m; bit 0 = abs, bit 1+j = delta_j
  std::vector<Interval> deltas;  // nrows * m * l

  Interval* OutRow(int64_t r) { return outs.data() + r * l; }
  Interval* InRow(int64_t r) { return ins.data() + r * m; }
  const Interval* OutRow(int64_t r) const { return outs.data() + r * l; }
  const Interval* InRow(int64_t r) const { return ins.data() + r * m; }
};

// ---------------------------------------------------------------- step 1 --

// Merges runs contiguous on input attribute `target` where all other
// attributes agree (the generalized range encoding of §IV.A step 1).
void RangeEncodeInputAttr(WorkState* st, int target) {
  const int l = st->l, m = st->m;
  std::vector<int64_t> order(static_cast<size_t>(st->nrows));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const Interval* oa = st->OutRow(a);
    const Interval* ob = st->OutRow(b);
    for (int k = 0; k < l; ++k) {
      int c = CompareIntervals(oa[k], ob[k]);
      if (c != 0) return c < 0;
    }
    const Interval* ia = st->InRow(a);
    const Interval* ib = st->InRow(b);
    for (int k = 0; k < m; ++k) {
      if (k == target) continue;
      int c = CompareIntervals(ia[k], ib[k]);
      if (c != 0) return c < 0;
    }
    return CompareIntervals(ia[target], ib[target]) < 0;
  });

  auto others_equal = [&](int64_t a, int64_t b) {
    const Interval* oa = st->OutRow(a);
    const Interval* ob = st->OutRow(b);
    for (int k = 0; k < l; ++k)
      if (!(oa[k] == ob[k])) return false;
    const Interval* ia = st->InRow(a);
    const Interval* ib = st->InRow(b);
    for (int k = 0; k < m; ++k)
      if (k != target && !(ia[k] == ib[k])) return false;
    return true;
  };

  std::vector<Interval> new_outs, new_ins;
  new_outs.reserve(st->outs.size());
  new_ins.reserve(st->ins.size());
  int64_t new_rows = 0;

  auto flush = [&](int64_t row, const Interval& acc) {
    const Interval* o = st->OutRow(row);
    new_outs.insert(new_outs.end(), o, o + l);
    const Interval* in = st->InRow(row);
    for (int k = 0; k < m; ++k)
      new_ins.push_back(k == target ? acc : in[k]);
    ++new_rows;
  };

  int64_t run_row = -1;
  Interval acc;
  for (int64_t idx : order) {
    if (run_row < 0) {
      run_row = idx;
      acc = st->InRow(idx)[target];
      continue;
    }
    const Interval& next = st->InRow(idx)[target];
    if (others_equal(run_row, idx) && acc.AdjacentBefore(next)) {
      acc.hi = next.hi;
      continue;
    }
    flush(run_row, acc);
    run_row = idx;
    acc = next;
  }
  if (run_row >= 0) flush(run_row, acc);

  st->outs = std::move(new_outs);
  st->ins = std::move(new_ins);
  st->nrows = new_rows;
}

// ---------------------------------------------------------------- step 2 --

// Initializes per-(row, input-attr) representation sets: the absolute
// interval plus one delta interval per output attribute (delta = a - b_j,
// the convention of the paper's Table II).
void InitRepresentations(WorkState* st) {
  const int l = st->l, m = st->m;
  st->masks.assign(static_cast<size_t>(st->nrows) * m, 0);
  st->deltas.assign(static_cast<size_t>(st->nrows) * m * l, Interval{});
  const uint32_t all_mask = (1u << (l + 1)) - 1;
  for (int64_t r = 0; r < st->nrows; ++r) {
    const Interval* outs = st->OutRow(r);
    const Interval* ins = st->InRow(r);
    for (int i = 0; i < m; ++i) {
      st->masks[static_cast<size_t>(r * m + i)] = all_mask;
      for (int j = 0; j < l; ++j) {
        // Outputs are degenerate before any output pass.
        int64_t b = outs[j].lo;
        st->deltas[static_cast<size_t>((r * m + i) * l + j)] =
            Interval{ins[i].lo - b, ins[i].hi - b};
      }
    }
  }
}

// Merges runs contiguous on output attribute `target` where the other
// output attributes agree and every input attribute retains at least one
// shared representation (§IV.A step 2).
void RangeEncodeOutputAttr(WorkState* st, int target) {
  const int l = st->l, m = st->m;
  std::vector<int64_t> order(static_cast<size_t>(st->nrows));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const Interval* oa = st->OutRow(a);
    const Interval* ob = st->OutRow(b);
    for (int k = 0; k < l; ++k) {
      if (k == target) continue;
      int c = CompareIntervals(oa[k], ob[k]);
      if (c != 0) return c < 0;
    }
    int c = CompareIntervals(oa[target], ob[target]);
    if (c != 0) return c < 0;
    // Deterministic tiebreak on inputs.
    const Interval* ia = st->InRow(a);
    const Interval* ib = st->InRow(b);
    for (int k = 0; k < m; ++k) {
      c = CompareIntervals(ia[k], ib[k]);
      if (c != 0) return c < 0;
    }
    return false;
  });

  auto other_outs_equal = [&](int64_t a, int64_t b) {
    const Interval* oa = st->OutRow(a);
    const Interval* ob = st->OutRow(b);
    for (int k = 0; k < l; ++k)
      if (k != target && !(oa[k] == ob[k])) return false;
    return true;
  };

  // Compatible-representation mask between the run's state (kept in acc_*)
  // and a candidate row.
  auto compat_mask = [&](uint32_t acc_mask, const Interval& acc_abs,
                         const Interval* acc_delta, int64_t row, int attr) {
    uint32_t row_mask = st->masks[static_cast<size_t>(row * m + attr)];
    uint32_t result = 0;
    if ((acc_mask & 1u) && (row_mask & 1u) &&
        acc_abs == st->InRow(row)[attr]) {
      result |= 1u;
    }
    for (int j = 0; j < l; ++j) {
      uint32_t bit = 1u << (j + 1);
      if ((acc_mask & bit) && (row_mask & bit) &&
          acc_delta[j] == st->deltas[static_cast<size_t>((row * m + attr) * l + j)]) {
        result |= bit;
      }
    }
    return result;
  };

  std::vector<Interval> new_outs, new_ins;
  std::vector<uint32_t> new_masks;
  std::vector<Interval> new_deltas;
  new_outs.reserve(st->outs.size());
  new_ins.reserve(st->ins.size());
  new_masks.reserve(st->masks.size());
  new_deltas.reserve(st->deltas.size());
  int64_t new_rows = 0;

  // Several mergeable families can interleave at the same output index
  // (e.g. the cross product's column pattern {0, 2}), so the scan keeps a
  // set of open runs instead of a single accumulator. A run closes when no
  // future row can extend it (the sweep passed its end, or the other output
  // attributes changed).
  struct Run {
    int64_t first_row;  // representative row for the other-outs comparison
    std::vector<Interval> out;
    std::vector<Interval> in;
    std::vector<uint32_t> masks;
    std::vector<Interval> deltas;
  };
  std::vector<Run> open;

  auto start_run = [&](int64_t row) {
    Run run;
    run.first_row = row;
    run.out.assign(st->OutRow(row), st->OutRow(row) + l);
    run.in.assign(st->InRow(row), st->InRow(row) + m);
    run.masks.resize(static_cast<size_t>(m));
    run.deltas.resize(static_cast<size_t>(m) * l);
    for (int i = 0; i < m; ++i) {
      run.masks[static_cast<size_t>(i)] =
          st->masks[static_cast<size_t>(row * m + i)];
      for (int j = 0; j < l; ++j)
        run.deltas[static_cast<size_t>(i * l + j)] =
            st->deltas[static_cast<size_t>((row * m + i) * l + j)];
    }
    open.push_back(std::move(run));
  };

  auto flush_run = [&](const Run& run) {
    new_outs.insert(new_outs.end(), run.out.begin(), run.out.end());
    new_ins.insert(new_ins.end(), run.in.begin(), run.in.end());
    new_masks.insert(new_masks.end(), run.masks.begin(), run.masks.end());
    new_deltas.insert(new_deltas.end(), run.deltas.begin(), run.deltas.end());
    ++new_rows;
  };

  for (int64_t idx : order) {
    const Interval& next = st->OutRow(idx)[target];
    // Close runs the sweep has passed (they can never be extended again).
    size_t keep = 0;
    for (size_t r = 0; r < open.size(); ++r) {
      bool expired = !other_outs_equal(open[r].first_row, idx) ||
                     open[r].out[static_cast<size_t>(target)].hi + 1 < next.lo;
      if (expired) {
        flush_run(open[r]);
      } else {
        if (keep != r) open[keep] = std::move(open[r]);
        ++keep;
      }
    }
    open.resize(keep);

    // Try to extend one of the still-open runs.
    bool merged = false;
    for (Run& run : open) {
      if (!run.out[static_cast<size_t>(target)].AdjacentBefore(next)) continue;
      std::vector<uint32_t> merged_masks(static_cast<size_t>(m));
      bool compatible = true;
      for (int i = 0; i < m && compatible; ++i) {
        merged_masks[static_cast<size_t>(i)] = compat_mask(
            run.masks[static_cast<size_t>(i)], run.in[static_cast<size_t>(i)],
            run.deltas.data() + static_cast<size_t>(i) * l, idx, i);
        if (merged_masks[static_cast<size_t>(i)] == 0) compatible = false;
      }
      if (!compatible) continue;
      run.out[static_cast<size_t>(target)].hi = next.hi;
      run.masks = std::move(merged_masks);
      merged = true;
      break;
    }
    if (!merged) start_run(idx);
  }
  for (const Run& run : open) flush_run(run);

  st->outs = std::move(new_outs);
  st->ins = std::move(new_ins);
  st->masks = std::move(new_masks);
  st->deltas = std::move(new_deltas);
  st->nrows = new_rows;
}

}  // namespace

CompressedTable ProvRcCompress(const LineageRelation& relation,
                               const ProvRcOptions& options) {
  LineageRelation rel = relation;
  rel.SortAndDedup();

  const int l = rel.out_ndim();
  const int m = rel.in_ndim();
  DSLOG_CHECK(l >= 1 && m >= 1) << "ProvRC requires arities >= 1";
  DSLOG_CHECK(l <= 31) << "output arity too large for representation masks";

  WorkState st;
  st.l = l;
  st.m = m;
  st.nrows = rel.num_rows();
  st.outs.reserve(static_cast<size_t>(st.nrows) * l);
  st.ins.reserve(static_cast<size_t>(st.nrows) * m);
  for (int64_t r = 0; r < st.nrows; ++r) {
    auto row = rel.Row(r);
    for (int k = 0; k < l; ++k)
      st.outs.push_back(Interval::Point(row[static_cast<size_t>(k)]));
    for (int k = 0; k < m; ++k)
      st.ins.push_back(Interval::Point(row[static_cast<size_t>(l + k)]));
  }

  // Step 1: input attributes, a_m first (paper order).
  for (int i = m - 1; i >= 0; --i) RangeEncodeInputAttr(&st, i);

  // Emit the surviving rows straight into the table's columnar arenas (the
  // working state is already flat, so this is a per-row gather, not a
  // per-row allocation).
  CompressedTable table(rel.out_shape(), rel.in_shape());
  std::vector<Interval> row_in(static_cast<size_t>(m));
  std::vector<int32_t> row_ref(static_cast<size_t>(m));
  if (options.enable_relative_transform) {
    // Step 2: relative transform, then output attributes b_l first.
    InitRepresentations(&st);
    for (int j = l - 1; j >= 0; --j) RangeEncodeOutputAttr(&st, j);

    table.Reserve(st.nrows);
    for (int64_t r = 0; r < st.nrows; ++r) {
      for (int i = 0; i < m; ++i) {
        uint32_t mask = st.masks[static_cast<size_t>(r * m + i)];
        DSLOG_DCHECK(mask != 0);
        if (mask & 1u) {
          // Pattern 2: the absolute value survived.
          row_in[static_cast<size_t>(i)] = st.InRow(r)[i];
          row_ref[static_cast<size_t>(i)] = -1;
        } else {
          // Pattern 3: pick the lowest surviving delta reference.
          int j = 0;
          while (((mask >> (j + 1)) & 1u) == 0) ++j;
          row_in[static_cast<size_t>(i)] =
              st.deltas[static_cast<size_t>((r * m + i) * l + j)];
          row_ref[static_cast<size_t>(i)] = j;
        }
      }
      table.AppendRowRaw(st.OutRow(r), row_in.data(), row_ref.data());
    }
  } else {
    table.Reserve(st.nrows);
    std::fill(row_ref.begin(), row_ref.end(), -1);
    for (int64_t r = 0; r < st.nrows; ++r)
      table.AppendRowRaw(st.OutRow(r), st.InRow(r), row_ref.data());
  }
  return table;
}

}  // namespace dslog
