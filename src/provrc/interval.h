// Closed integer intervals — the unit of ProvRC's multi-attribute range
// encoding (ICDE'24 §IV). All intervals are inclusive on both ends.

#ifndef DSLOG_PROVRC_INTERVAL_H_
#define DSLOG_PROVRC_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace dslog {

/// [lo, hi], both inclusive. A single index i is the degenerate [i, i].
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  static Interval Point(int64_t v) { return {v, v}; }

  bool operator==(const Interval& o) const = default;

  int64_t width() const { return hi - lo + 1; }
  bool valid() const { return lo <= hi; }
  bool Contains(int64_t v) const { return v >= lo && v <= hi; }

  bool Intersects(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }

  /// Intersection; invalid (lo > hi) when disjoint.
  Interval Intersect(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// True when `o` starts exactly one past this interval's end.
  bool AdjacentBefore(const Interval& o) const { return o.lo == hi + 1; }

  /// Minkowski-style shift by a delta interval: {a + d : a in this, d in d}.
  Interval ShiftBy(const Interval& d) const { return {lo + d.lo, hi + d.hi}; }

  std::string ToString() const {
    if (lo == hi) return std::to_string(lo);
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
};

/// Three-way lexicographic comparison used by the range-encoding sorts.
inline int CompareIntervals(const Interval& a, const Interval& b) {
  if (a.lo != b.lo) return a.lo < b.lo ? -1 : 1;
  if (a.hi != b.hi) return a.hi < b.hi ? -1 : 1;
  return 0;
}

}  // namespace dslog

#endif  // DSLOG_PROVRC_INTERVAL_H_
