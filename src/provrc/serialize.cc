#include "provrc/serialize.h"

#include <bit>
#include <cstring>
#include <string_view>

#include "compress/deflate.h"
#include "compress/varint.h"

namespace dslog {

namespace {
constexpr char kMagic[4] = {'P', 'R', 'C', '1'};

void PutInterval(std::string* dst, const Interval& iv, int64_t* prev_lo) {
  PutVarintSigned(dst, iv.lo - *prev_lo);
  PutVarint64(dst, static_cast<uint64_t>(iv.width() - 1));
  *prev_lo = iv.lo;
}

bool GetInterval(std::string_view src, size_t* pos, Interval* iv,
                 int64_t* prev_lo) {
  int64_t dlo;
  uint64_t w;
  if (!GetVarintSigned(src, pos, &dlo)) return false;
  if (!GetVarint64(src, pos, &w)) return false;
  iv->lo = *prev_lo + dlo;
  iv->hi = iv->lo + static_cast<int64_t>(w);
  *prev_lo = iv->lo;
  return true;
}

}  // namespace

std::string SerializeCompressedTable(const CompressedTable& table) {
  std::string out;
  out.append(kMagic, 4);
  const int l = table.out_ndim();
  const int m = table.in_ndim();
  PutVarint64(&out, static_cast<uint64_t>(l));
  PutVarint64(&out, static_cast<uint64_t>(m));
  for (int64_t d : table.out_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
  for (int64_t d : table.in_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
  PutVarint64(&out, static_cast<uint64_t>(table.num_rows()));

  // Per-attribute cross-row delta state.
  std::vector<int64_t> prev_out(static_cast<size_t>(l), 0);
  std::vector<int64_t> prev_in(static_cast<size_t>(m), 0);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int k = 0; k < l; ++k)
      PutInterval(&out, table.out_iv(r, k), &prev_out[static_cast<size_t>(k)]);
    for (int i = 0; i < m; ++i) {
      const int32_t ref = table.in_ref(r, i);
      // Tag byte: bit 0 = relative, bits 1.. = ref.
      uint8_t tag =
          ref >= 0 ? static_cast<uint8_t>(1u | (static_cast<uint32_t>(ref) << 1))
                   : 0;
      out.push_back(static_cast<char>(tag));
      PutInterval(&out, table.in_iv(r, i), &prev_in[static_cast<size_t>(i)]);
    }
  }
  return out;
}

Result<CompressedTable> DeserializeCompressedTable(std::string_view data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0)
    return Status::Corruption("PRC1: bad magic");
  size_t pos = 4;
  uint64_t l, m;
  if (!GetVarint64(data, &pos, &l) || !GetVarint64(data, &pos, &m))
    return Status::Corruption("PRC1: bad arity");
  // ProvRC tables always have at least one attribute per side; zero arity
  // would also make the row loop consume no bytes (and divide by zero in
  // the reserve bound below), so it is rejected as corruption.
  if (l == 0 || l > 64 || m == 0 || m > 64)
    return Status::Corruption("PRC1: absurd arity");
  std::vector<int64_t> out_shape(l), in_shape(m);
  for (auto& d : out_shape) {
    uint64_t v;
    if (!GetVarint64(data, &pos, &v)) return Status::Corruption("PRC1: shape");
    d = static_cast<int64_t>(v);
  }
  for (auto& d : in_shape) {
    uint64_t v;
    if (!GetVarint64(data, &pos, &v)) return Status::Corruption("PRC1: shape");
    d = static_cast<int64_t>(v);
  }
  uint64_t nrows;
  if (!GetVarint64(data, &pos, &nrows))
    return Status::Corruption("PRC1: row count");

  CompressedTable table(out_shape, in_shape);
  // Reserve from the claimed row count, bounded by what the remaining bytes
  // could possibly encode (>= 2 bytes per interval cell), so a corrupt count
  // cannot trigger an absurd allocation.
  const uint64_t plausible =
      std::min<uint64_t>(nrows, data.size() / (2 * (l + m)) + 1);
  table.Reserve(static_cast<int64_t>(plausible));
  std::vector<Interval> row_out(l);
  std::vector<Interval> row_in(m);
  std::vector<int32_t> row_ref(m);
  std::vector<int64_t> prev_out(l, 0), prev_in(m, 0);
  for (uint64_t r = 0; r < nrows; ++r) {
    for (size_t k = 0; k < l; ++k)
      if (!GetInterval(data, &pos, &row_out[k], &prev_out[k]))
        return Status::Corruption("PRC1: truncated out interval");
    for (size_t k = 0; k < m; ++k) {
      if (pos >= data.size()) return Status::Corruption("PRC1: truncated tag");
      uint8_t tag = static_cast<uint8_t>(data[pos++]);
      if (tag & 1u) {
        row_ref[k] = static_cast<int32_t>(tag >> 1);
        if (row_ref[k] >= static_cast<int32_t>(l))
          return Status::Corruption("PRC1: bad relative ref");
      } else {
        row_ref[k] = -1;
      }
      if (!GetInterval(data, &pos, &row_in[k], &prev_in[k]))
        return Status::Corruption("PRC1: truncated in interval");
    }
    table.AppendRowRaw(row_out.data(), row_in.data(), row_ref.data());
  }
  return table;
}

std::string SerializeCompressedTableGzip(const CompressedTable& table) {
  return DeflateCompress(SerializeCompressedTable(table));
}

Result<CompressedTable> DeserializeCompressedTableGzip(std::string_view data) {
  DSLOG_ASSIGN_OR_RETURN(std::string raw, DeflateDecompress(data));
  return DeserializeCompressedTable(raw);
}

// ------------------------------------------------------- columnar (PRC2) --

// Layout (all little-endian, every array 8-byte aligned relative to the
// image start; the LogStore writer 8-aligns segment offsets so an aligned
// mapping yields aligned columns):
//
//   0   magic "PRCCOLV2"                      8 bytes
//   8   uint32 out_ndim | uint32 in_ndim      8 bytes
//   16  uint64 num_rows                       8 bytes
//   24  int64 out_shape[l], int64 in_shape[m]
//       int64 lo[num_rows * (l + m)]
//       int64 hi[num_rows * (l + m)]
//       int32 ref[num_rows * m], zero-padded to a multiple of 8
//
// The arena layout is exactly CompressedTableView's, so borrowing is a
// pointer fixup, not a decode.

static_assert(std::endian::native == std::endian::little,
              "PRC2 columnar images are little-endian; big-endian hosts "
              "need byte-swapping decode support");

namespace {

constexpr char kColumnarMagic[8] = {'P', 'R', 'C', 'C', 'O', 'L', 'V', '2'};
constexpr size_t kColumnarHeaderBytes = 24;

size_t PadTo8(size_t n) { return (n + 7) & ~size_t{7}; }

struct ColumnarExtents {
  size_t shape_bytes;
  size_t arena_cells;  // num_rows * (l + m)
  size_t ref_cells;    // num_rows * m
  size_t total_bytes;
};

ColumnarExtents ExtentsFor(uint64_t l, uint64_t m, uint64_t rows) {
  ColumnarExtents e;
  e.shape_bytes = static_cast<size_t>(l + m) * 8;
  e.arena_cells = static_cast<size_t>(rows * (l + m));
  e.ref_cells = static_cast<size_t>(rows * m);
  e.total_bytes = kColumnarHeaderBytes + e.shape_bytes + 2 * e.arena_cells * 8 +
                  PadTo8(e.ref_cells * 4);
  return e;
}

void AppendRaw(std::string* dst, const void* src, size_t bytes) {
  dst->append(reinterpret_cast<const char*>(src), bytes);
}

/// Header + structural validation shared by borrow and owned decode.
/// On success fills l/m/rows and the extents.
Status ParseColumnarHeader(std::string_view data, uint64_t* l, uint64_t* m,
                           uint64_t* rows, ColumnarExtents* extents) {
  if (data.size() < kColumnarHeaderBytes ||
      std::memcmp(data.data(), kColumnarMagic, sizeof(kColumnarMagic)) != 0)
    return Status::Corruption("PRC2: bad magic");
  uint32_t l32, m32;
  uint64_t rows64;
  std::memcpy(&l32, data.data() + 8, 4);
  std::memcpy(&m32, data.data() + 12, 4);
  std::memcpy(&rows64, data.data() + 16, 8);
  if (l32 == 0 || l32 > 64 || m32 == 0 || m32 > 64)
    return Status::Corruption("PRC2: absurd arity");
  // Row count must be consistent with the image size before any multiply
  // can overflow: the arenas alone need 16 bytes per row-cell.
  if (rows64 > data.size() / (16 * (l32 + m32)) + 1)
    return Status::Corruption("PRC2: absurd row count");
  *l = l32;
  *m = m32;
  *rows = rows64;
  *extents = ExtentsFor(l32, m32, rows64);
  if (data.size() != extents->total_bytes)
    return Status::Corruption("PRC2: image size mismatch");
  return Status::OK();
}

/// Refs must stay in [-1, l): a corrupt ref would index out of the t[]
/// scratch inside the join kernels.
Status ValidateRefs(const int32_t* ref, size_t count, uint64_t l) {
  for (size_t i = 0; i < count; ++i)
    if (ref[i] < -1 || ref[i] >= static_cast<int32_t>(l))
      return Status::Corruption("PRC2: relative ref out of range");
  return Status::OK();
}

}  // namespace

std::string SerializeCompressedTableColumnar(const CompressedTable& table) {
  const uint32_t l = static_cast<uint32_t>(table.out_ndim());
  const uint32_t m = static_cast<uint32_t>(table.in_ndim());
  const uint64_t rows = static_cast<uint64_t>(table.num_rows());
  const ColumnarExtents e = ExtentsFor(l, m, rows);
  std::string out;
  out.reserve(e.total_bytes);
  out.append(kColumnarMagic, sizeof(kColumnarMagic));
  AppendRaw(&out, &l, 4);
  AppendRaw(&out, &m, 4);
  AppendRaw(&out, &rows, 8);
  AppendRaw(&out, table.out_shape().data(), l * 8);
  AppendRaw(&out, table.in_shape().data(), m * 8);
  AppendRaw(&out, table.lo_data(), e.arena_cells * 8);
  AppendRaw(&out, table.hi_data(), e.arena_cells * 8);
  AppendRaw(&out, table.ref_data(), e.ref_cells * 4);
  out.resize(e.total_bytes, '\0');  // zero pad to 8
  return out;
}

Result<CompressedTableView> BorrowColumnarTable(std::string_view data) {
  uint64_t l, m, rows;
  ColumnarExtents e;
  DSLOG_RETURN_IF_ERROR(ParseColumnarHeader(data, &l, &m, &rows, &e));
  if (reinterpret_cast<uintptr_t>(data.data()) % 8 != 0)
    return Status::NotSupported("PRC2: unaligned image, cannot borrow");
  const char* base = data.data() + kColumnarHeaderBytes;
  CompressedTableView v;
  v.out_shape = reinterpret_cast<const int64_t*>(base);
  v.in_shape = v.out_shape + l;
  v.lo = reinterpret_cast<const int64_t*>(base + e.shape_bytes);
  v.hi = v.lo + e.arena_cells;
  v.ref = reinterpret_cast<const int32_t*>(base + e.shape_bytes +
                                           2 * e.arena_cells * 8);
  v.out_ndim = static_cast<int32_t>(l);
  v.in_ndim = static_cast<int32_t>(m);
  v.num_rows = static_cast<int64_t>(rows);
  DSLOG_RETURN_IF_ERROR(ValidateRefs(v.ref, e.ref_cells, l));
  return v;
}

Result<CompressedTable> DeserializeCompressedTableColumnar(
    std::string_view data) {
  uint64_t l, m, rows;
  ColumnarExtents e;
  DSLOG_RETURN_IF_ERROR(ParseColumnarHeader(data, &l, &m, &rows, &e));
  const char* base = data.data() + kColumnarHeaderBytes;
  std::vector<int64_t> out_shape(l), in_shape(m);
  std::memcpy(out_shape.data(), base, l * 8);
  std::memcpy(in_shape.data(), base + l * 8, m * 8);
  CompressedTable table(std::move(out_shape), std::move(in_shape));
  table.Reserve(static_cast<int64_t>(rows));
  const char* lo_base = base + e.shape_bytes;
  const char* hi_base = lo_base + e.arena_cells * 8;
  const char* ref_base = hi_base + e.arena_cells * 8;
  // Copy the ref arena once (memcpy is alignment-agnostic) and validate it
  // with the same helper the borrow path uses.
  std::vector<int32_t> refs(e.ref_cells);
  std::memcpy(refs.data(), ref_base, e.ref_cells * 4);
  DSLOG_RETURN_IF_ERROR(ValidateRefs(refs.data(), e.ref_cells, l));
  const size_t w = static_cast<size_t>(l + m);
  std::vector<Interval> row_out(l), row_in(m);
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t k = 0; k < w; ++k) {
      int64_t lo, hi;
      std::memcpy(&lo, lo_base + (r * w + k) * 8, 8);
      std::memcpy(&hi, hi_base + (r * w + k) * 8, 8);
      if (k < l)
        row_out[k] = {lo, hi};
      else
        row_in[k - l] = {lo, hi};
    }
    table.AppendRowRaw(row_out.data(), row_in.data(), refs.data() + r * m);
  }
  return table;
}

}  // namespace dslog
