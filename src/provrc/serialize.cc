#include "provrc/serialize.h"

#include <cstring>
#include <string_view>

#include "compress/deflate.h"
#include "compress/varint.h"

namespace dslog {

namespace {
constexpr char kMagic[4] = {'P', 'R', 'C', '1'};

void PutInterval(std::string* dst, const Interval& iv, int64_t* prev_lo) {
  PutVarintSigned(dst, iv.lo - *prev_lo);
  PutVarint64(dst, static_cast<uint64_t>(iv.width() - 1));
  *prev_lo = iv.lo;
}

bool GetInterval(std::string_view src, size_t* pos, Interval* iv,
                 int64_t* prev_lo) {
  int64_t dlo;
  uint64_t w;
  if (!GetVarintSigned(src, pos, &dlo)) return false;
  if (!GetVarint64(src, pos, &w)) return false;
  iv->lo = *prev_lo + dlo;
  iv->hi = iv->lo + static_cast<int64_t>(w);
  *prev_lo = iv->lo;
  return true;
}

}  // namespace

std::string SerializeCompressedTable(const CompressedTable& table) {
  std::string out;
  out.append(kMagic, 4);
  PutVarint64(&out, static_cast<uint64_t>(table.out_ndim()));
  PutVarint64(&out, static_cast<uint64_t>(table.in_ndim()));
  for (int64_t d : table.out_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
  for (int64_t d : table.in_shape()) PutVarint64(&out, static_cast<uint64_t>(d));
  PutVarint64(&out, static_cast<uint64_t>(table.num_rows()));

  // Per-attribute cross-row delta state.
  std::vector<int64_t> prev_out(static_cast<size_t>(table.out_ndim()), 0);
  std::vector<int64_t> prev_in(static_cast<size_t>(table.in_ndim()), 0);
  for (const CompressedRow& row : table.rows()) {
    for (size_t k = 0; k < row.out.size(); ++k)
      PutInterval(&out, row.out[k], &prev_out[k]);
    for (size_t k = 0; k < row.in.size(); ++k) {
      const InputCell& c = row.in[k];
      // Tag byte: bit 0 = relative, bits 1.. = ref.
      uint8_t tag = c.is_relative()
                        ? static_cast<uint8_t>(1u | (static_cast<uint32_t>(c.ref) << 1))
                        : 0;
      out.push_back(static_cast<char>(tag));
      PutInterval(&out, c.iv, &prev_in[k]);
    }
  }
  return out;
}

Result<CompressedTable> DeserializeCompressedTable(std::string_view data) {
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0)
    return Status::Corruption("PRC1: bad magic");
  size_t pos = 4;
  uint64_t l, m;
  if (!GetVarint64(data, &pos, &l) || !GetVarint64(data, &pos, &m))
    return Status::Corruption("PRC1: bad arity");
  if (l > 64 || m > 64) return Status::Corruption("PRC1: absurd arity");
  std::vector<int64_t> out_shape(l), in_shape(m);
  for (auto& d : out_shape) {
    uint64_t v;
    if (!GetVarint64(data, &pos, &v)) return Status::Corruption("PRC1: shape");
    d = static_cast<int64_t>(v);
  }
  for (auto& d : in_shape) {
    uint64_t v;
    if (!GetVarint64(data, &pos, &v)) return Status::Corruption("PRC1: shape");
    d = static_cast<int64_t>(v);
  }
  uint64_t nrows;
  if (!GetVarint64(data, &pos, &nrows))
    return Status::Corruption("PRC1: row count");

  CompressedTable table(out_shape, in_shape);
  std::vector<int64_t> prev_out(l, 0), prev_in(m, 0);
  for (uint64_t r = 0; r < nrows; ++r) {
    CompressedRow row;
    row.out.resize(l);
    row.in.resize(m);
    for (size_t k = 0; k < l; ++k)
      if (!GetInterval(data, &pos, &row.out[k], &prev_out[k]))
        return Status::Corruption("PRC1: truncated out interval");
    for (size_t k = 0; k < m; ++k) {
      if (pos >= data.size()) return Status::Corruption("PRC1: truncated tag");
      uint8_t tag = static_cast<uint8_t>(data[pos++]);
      if (tag & 1u) {
        row.in[k].kind = InputCell::Kind::kRelative;
        row.in[k].ref = static_cast<int32_t>(tag >> 1);
        if (row.in[k].ref >= static_cast<int32_t>(l))
          return Status::Corruption("PRC1: bad relative ref");
      } else {
        row.in[k].kind = InputCell::Kind::kAbsolute;
        row.in[k].ref = -1;
      }
      if (!GetInterval(data, &pos, &row.in[k].iv, &prev_in[k]))
        return Status::Corruption("PRC1: truncated in interval");
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::string SerializeCompressedTableGzip(const CompressedTable& table) {
  return DeflateCompress(SerializeCompressedTable(table));
}

Result<CompressedTable> DeserializeCompressedTableGzip(std::string_view data) {
  DSLOG_ASSIGN_OR_RETURN(std::string raw, DeflateDecompress(data));
  return DeserializeCompressedTable(raw);
}

}  // namespace dslog
