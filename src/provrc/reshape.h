// Index reshaping (ICDE'24 §VI.B): converting a compressed lineage table
// into a *generalized representation* where absolute intervals spanning an
// entire array dimension ([0, d_k - 1]) become symbolic ([0, D_k - 1]).
// The generalized table can then be instantiated for differently-shaped
// inputs of the same operation — the mechanism behind gen_sig reuse.

#ifndef DSLOG_PROVRC_RESHAPE_H_
#define DSLOG_PROVRC_RESHAPE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "provrc/compressed_table.h"

namespace dslog {

/// A compressed table whose full-extent intervals are marked symbolic.
/// Dimension ids index the concatenated vector [out_shape..., in_shape...].
class GeneralizedTable {
 public:
  GeneralizedTable() = default;

  /// Builds the generalized representation of `table`. Every interval cell
  /// exactly equal to [0, d_k - 1] for some dimension d_k is replaced by the
  /// symbolic full-extent of that dimension. Dimensions of the same
  /// attribute position are preferred when extents collide; remaining
  /// collisions resolve to the first matching dimension (this ambiguity is
  /// what produces the paper's `cross` misprediction).
  static GeneralizedTable Generalize(const CompressedTable& table);

  /// Rebuilds a concrete table for new endpoint shapes. Fails when the
  /// arities do not match.
  Result<CompressedTable> Instantiate(
      const std::vector<int64_t>& out_shape,
      const std::vector<int64_t>& in_shape) const;

  /// True when at least one cell is symbolic (otherwise the generalized
  /// table is trivially shape-independent).
  bool has_symbolic_cells() const { return has_symbolic_; }

  /// Appends a self-delimiting binary encoding (template table + symbolic
  /// marks) to `dst`. Used to persist gen_sig reuse state.
  void AppendTo(std::string* dst) const;

  /// Inverse of AppendTo: parses one encoded table at `*pos`, advancing it.
  static Result<GeneralizedTable> ParseFrom(std::string_view src, size_t* pos);

  int out_ndim() const { return static_cast<int>(template_.out_shape().size()); }
  int in_ndim() const { return static_cast<int>(template_.in_shape().size()); }
  int64_t num_rows() const { return template_.num_rows(); }

  std::string DebugString() const;

  bool operator==(const GeneralizedTable& o) const = default;

 private:
  // The original (concrete) table acting as a template...
  CompressedTable template_;
  // ...plus, per row, per cell, the symbolic dimension id (-1 = concrete).
  // Cell order within a row: out attrs then in attrs.
  std::vector<std::vector<int32_t>> marks_;
  bool has_symbolic_ = false;
};

}  // namespace dslog

#endif  // DSLOG_PROVRC_RESHAPE_H_
