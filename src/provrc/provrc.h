// ProvRC lineage compression (ICDE'24 §IV): multi-attribute range encoding
// over input attributes (step 1), then relative value transformation and
// range encoding over output attributes (step 2). Lossless: Decompress()
// of the result equals the input relation under set semantics.

#ifndef DSLOG_PROVRC_PROVRC_H_
#define DSLOG_PROVRC_PROVRC_H_

#include "lineage/lineage_relation.h"
#include "provrc/compressed_table.h"

namespace dslog {

/// Tuning/ablation knobs for the compressor.
struct ProvRcOptions {
  /// Step 2 (relative transformation + output range encoding). Disabling it
  /// leaves a pure multi-attribute range encoding (ablation A2).
  bool enable_relative_transform = true;
};

/// Compresses an uncompressed lineage relation. The relation is normalized
/// (sorted, deduplicated) internally; set semantics are assumed.
CompressedTable ProvRcCompress(const LineageRelation& relation,
                               const ProvRcOptions& options = {});

}  // namespace dslog

#endif  // DSLOG_PROVRC_PROVRC_H_
