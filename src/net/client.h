// Client side of the lineage service: a blocking single-requester
// connection (DslogClient) plus the netplay-style batching handle
// (IngestHandle) that reserves operation-id blocks and ships data blocks,
// so steady-state ingest pays one round trip per *block*, not per
// operation.
//
// Threading: one thread drives requests on a client at a time (requests
// are strict request/response round trips). Cancel() is the one
// cross-thread-safe call — it enqueues an out-of-band kCancel frame that
// the server's reactor applies to the in-flight request immediately, so a
// second thread can abort a long query the first thread is blocked on.

#ifndef DSLOG_NET_CLIENT_H_
#define DSLOG_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/protocol.h"
#include "net/wire.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "storage/dslog.h"
#include "storage/signatures.h"

namespace dslog {
namespace net {

struct ClientOptions {
  int connect_timeout_ms = 5'000;
  /// Per-syscall send/recv timeout (SO_SNDTIMEO / SO_RCVTIMEO); a stuck
  /// server surfaces as Status::IOError instead of a hang.
  int io_timeout_ms = 30'000;
  std::string client_name = "dslog_client";
  int64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// One connected, Hello-completed session against a DslogServer.
class DslogClient {
 public:
  /// Connects and runs the Hello handshake. `host` is a numeric IPv4
  /// address.
  static Result<std::unique_ptr<DslogClient>> Connect(
      const std::string& host, int port, const ClientOptions& options = {});

  ~DslogClient();
  DslogClient(const DslogClient&) = delete;
  DslogClient& operator=(const DslogClient&) = delete;

  /// The server's Hello response (name, negotiated frame cap).
  const HelloResponse& server_hello() const { return hello_; }

  Status OpenStore(const std::string& store, bool create = true);
  Status DefineArray(const std::string& name, std::vector<int64_t> shape);

  /// Reserves `count` operation ids; returns {base, count}. Usually called
  /// through an IngestHandle rather than directly.
  Result<std::pair<uint64_t, uint64_t>> ReserveOpIds(uint64_t count);

  /// Ships one pre-encoded ingest data block (varint op count + encoded
  /// WireOperations). Returns the server's total staged count. Takes a
  /// view: on failure the caller still owns the block and may retry.
  Result<int64_t> ShipIngestBlock(uint64_t num_ops, std::string_view block);

  /// Commits everything this session staged; one outcome per staged op.
  Result<std::vector<ReuseOutcome>> Drain();

  /// A prov_query over the open store. With options.profile set and
  /// `profile_json` non-null, receives the server-side QueryProfile JSON.
  Result<BoxTable> Query(const std::vector<std::string>& path,
                         const BoxTable& query,
                         const QueryOptions& options = {},
                         std::string* profile_json = nullptr);

  /// Fire-and-forget, thread-safe: asks the server to cancel this
  /// session's in-flight request (no response frame).
  Status Cancel();

  /// Server + metrics snapshot as JSON.
  Result<std::string> ServerStats();

  /// Graceful goodbye (waits for ByeOk). The destructor just closes.
  Status Bye();

 private:
  DslogClient(int fd, ClientOptions options);

  /// One request/response round trip. Returns the response payload on
  /// `ok_opcode`; a decoded Status on kError/kOverloaded.
  Result<std::string> Roundtrip(Opcode opcode, std::string_view payload,
                                Opcode ok_opcode);
  Status SendFrame(Opcode opcode, uint32_t request_id,
                   std::string_view payload);
  Result<Frame> ReadFrame();

  int fd_;
  ClientOptions options_;
  HelloResponse hello_;
  FrameDecoder decoder_;
  uint32_t next_request_id_ = 1;
  /// Serializes writers (the requester thread vs. Cancel callers).
  std::mutex write_mu_;
};

/// Batched staged ingest over a client: Add() assigns each registration an
/// operation id from a locally held reserved block (refilled with one
/// ReserveIds round trip per `id_block_size` ops) and accretes its encoded
/// form into a data block, shipped when either the op budget or the byte
/// budget fills. Nothing commits server-side until Drain().
class IngestHandle {
 public:
  explicit IngestHandle(DslogClient* client, uint64_t id_block_size = 32,
                        int64_t data_block_bytes = 64 << 10)
      : client_(client),
        id_block_size_(id_block_size == 0 ? 1 : id_block_size),
        data_block_bytes_(data_block_bytes) {}

  /// Stages one registration; returns its assigned operation id.
  Result<uint64_t> Add(const OperationRegistration& reg);

  /// Ships the partially filled data block, if any.
  Status Flush();

  /// Flush + server-side Drain: commits every staged op, one outcome each.
  Result<std::vector<ReuseOutcome>> Drain();

  /// Ops added locally since construction (shipped or not).
  int64_t ops_added() const { return ops_added_; }
  /// Data blocks shipped so far (round-trip count for tests).
  int64_t blocks_shipped() const { return blocks_shipped_; }

 private:
  DslogClient* client_;
  uint64_t id_block_size_;
  int64_t data_block_bytes_;

  uint64_t next_id_ = 0;
  uint64_t ids_remaining_ = 0;

  std::string block_;
  uint64_t ops_in_block_ = 0;
  int64_t ops_added_ = 0;
  int64_t blocks_shipped_ = 0;
};

}  // namespace net
}  // namespace dslog

#endif  // DSLOG_NET_CLIENT_H_
