// DslogServer: lineage-as-a-service over TCP. One reactor thread owns
// accept + all socket reads (non-blocking, poll()-driven); a dedicated
// worker pool executes requests and writes responses. Each connection is a
// *session*: after a Hello handshake it binds to one tenant store
// namespace, owns at most one StagedIngest (batched ingest that commits
// only on an explicit Drain), and has its requests executed strictly in
// arrival order on a serialized per-session lane — so one session can
// never interleave its own responses, while distinct sessions run fully in
// parallel on the pool.
//
// Admission control (all three produce *typed* responses, never unbounded
// queueing):
//   1. accept:   sessions > max_sessions        -> kOverloaded, close.
//   2. dispatch: global in-flight > max_inflight_requests
//                -> that request answers kOverloaded (in order, via the
//                   session lane); the connection survives.
//   3. pipeline: one session queueing > max_pipelined_per_session frames
//                -> protocol error, teardown (a well-behaved client waits
//                   for responses; only a flooder trips this).
//
// Cancellation & teardown: a kCancel frame is handled by the reactor the
// moment it is read — it cancels the CancelToken of the session's
// in-flight query, which stops at the next hop boundary. Session teardown
// (EOF, protocol error, idle timeout, server stop) cancels the same token
// and destroys the session's StagedIngest, so staged-but-undrained ingest
// from a dropped client commits nothing.

#ifndef DSLOG_NET_SERVER_H_
#define DSLOG_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/wire.h"
#include "storage/dslog.h"

namespace dslog {
namespace net {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with DslogServer::port().
  int port = 0;
  /// Accept bound: connections beyond this are answered kOverloaded and
  /// closed without ever becoming sessions.
  int max_sessions = 4096;
  /// Request-execution threads. 0 = min(8, hardware_concurrency). The pool
  /// is the server's own — blocking response writes must never stall the
  /// shared query ThreadPool.
  int worker_threads = 0;
  /// Unanswered frames one session may queue before it is treated as a
  /// protocol flooder and torn down.
  int max_pipelined_per_session = 64;
  /// Global bound on dispatched-but-unfinished requests across all
  /// sessions; excess requests are shed with kOverloaded.
  int max_inflight_requests = 1024;
  /// Frame payload cap enforced by every session's decoder.
  int64_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A session stalled mid-frame (slow loris) or silent before completing
  /// the Hello handshake for longer than this is torn down. <= 0 disables.
  int idle_timeout_ms = 30'000;
  /// Per-write-syscall progress timeout when a client stops draining its
  /// receive window.
  int write_timeout_ms = 10'000;
  /// Upper bound applied to QueryOptions::num_threads from the wire.
  int query_threads_cap = 8;
  /// Whether OpenStore{create=true} may create a new tenant namespace.
  bool allow_create_store = true;
  std::string server_name = "dslog_server";
};

/// The server. Mount stores, Start, Stop. Thread-safe after Start.
class DslogServer {
 public:
  explicit DslogServer(ServerOptions options = {});
  ~DslogServer();

  DslogServer(const DslogServer&) = delete;
  DslogServer& operator=(const DslogServer&) = delete;

  /// Adds (or replaces, before Start only) a tenant store namespace.
  Status Mount(const std::string& name, DSLog log);

  /// Binds, listens, and launches the reactor + workers.
  Status Start();

  /// Tears down every session (cancelling in-flight queries), joins the
  /// reactor and workers. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (after Start).
  int port() const;
  /// Live session count (reactor-maintained).
  int64_t active_sessions() const;
  /// The mounted store, or nullptr. Valid for the server's lifetime; used
  /// by tests as the in-process oracle over the same data the server
  /// serves.
  const DSLog* store(const std::string& name) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace dslog

#endif  // DSLOG_NET_SERVER_H_
