#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/metrics.h"
#include "net/protocol.h"

namespace dslog {
namespace net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool ValidStoreName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

struct DslogServer::Impl {
  // One tenant namespace: a DSLog plus the id allocator behind ReserveIds.
  struct TenantStore {
    explicit TenantStore(DSLog l) : log(std::move(l)) {}
    DSLog log;
    std::atomic<uint64_t> next_op_id{1};
  };

  // One queued request of a session. `counted` marks entries charged
  // against the global in-flight bound (sheds and courtesy errors are
  // not); whoever removes the entry from the queue settles the charge.
  struct Pending {
    Frame frame;
    bool shed = false;
    bool counted = false;
    Status error;  // non-OK: emit kError(error) instead of executing
  };

  struct Session {
    int fd = -1;
    FrameDecoder decoder;
    // Reactor-private.
    int64_t last_progress_ms = 0;
    // Written by the worker lane (handshake), read by the reactor sweep.
    std::atomic<bool> hello_done{false};
    // draining: stop reading, finish queued responses, then close.
    // closing: hard teardown — the lane drops whatever is still queued.
    std::atomic<bool> draining{false};
    std::atomic<bool> closing{false};

    std::mutex mu;
    std::deque<Pending> pending;            // guarded by mu
    bool running = false;                   // guarded by mu: lane scheduled
    std::shared_ptr<CancelToken> active_cancel;  // guarded by mu

    // Lane-private (the serialized lane is this state's only toucher).
    std::shared_ptr<TenantStore> store;
    std::unique_ptr<StagedIngest> stager;

    explicit Session(int fd, int64_t max_frame)
        : fd(fd), decoder(max_frame), last_progress_ms(NowMs()) {}
    ~Session() {
      if (fd >= 0) ::close(fd);
    }
  };

  explicit Impl(ServerOptions o) : options(std::move(o)) {}

  // ------------------------------------------------------------ lifecycle --

  Status Start() {
    if (started) return Status::InvalidArgument("server already started");
    int pipefd[2];
    if (::pipe(pipefd) != 0) return Status::IOError("pipe() failed");
    wake_read = pipefd[0];
    wake_write = pipefd[1];
    SetNonBlocking(wake_read);
    SetNonBlocking(wake_write);

    // Start() failing must not leak fds: started stays false, so Stop()
    // never runs and nothing else would close them.
    const auto fail = [this](Status status) {
      if (listen_fd >= 0) ::close(listen_fd);
      ::close(wake_read);
      ::close(wake_write);
      listen_fd = wake_read = wake_write = -1;
      return status;
    };

    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return fail(Status::IOError("socket() failed"));
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
      return fail(Status::InvalidArgument(
          "host must be a numeric IPv4 address: " + options.host));
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0)
      return fail(Status::IOError("bind(" + options.host + ":" +
                                  std::to_string(options.port) +
                                  ") failed: " + std::strerror(errno)));
    if (::listen(listen_fd, 512) != 0)
      return fail(Status::IOError("listen() failed"));
    SetNonBlocking(listen_fd);

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port.store(ntohs(bound.sin_port));

    int n = options.worker_threads;
    if (n <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      n = static_cast<int>(std::min(8u, std::max(2u, hw)));
    }
    for (int i = 0; i < n; ++i) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
    reactor = std::thread([this] { ReactorLoop(); });
    started = true;
    return Status::OK();
  }

  void Stop() {
    if (!started || stopped) return;
    stopped = true;
    stopping.store(true);
    Wake();
    reactor.join();
    {
      std::lock_guard<std::mutex> lk(pool_mu);
      pool_done = true;
    }
    pool_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    ::close(wake_read);
    ::close(wake_write);
    listen_fd = wake_read = wake_write = -1;
  }

  void Wake() {
    char b = 1;
    [[maybe_unused]] ssize_t r = ::write(wake_write, &b, 1);
  }

  // ---------------------------------------------------------- worker pool --

  void Submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lk(pool_mu);
      pool_jobs.push_back(std::move(job));
    }
    pool_cv.notify_one();
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(pool_mu);
        pool_cv.wait(lk, [this] { return pool_done || !pool_jobs.empty(); });
        if (pool_jobs.empty()) return;  // pool_done and drained
        job = std::move(pool_jobs.front());
        pool_jobs.pop_front();
      }
      job();
    }
  }

  // -------------------------------------------------------------- reactor --

  void ReactorLoop() {
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Session>> polled;
    bool teardown_broadcast = false;
    for (;;) {
      if (stopping.load() && !teardown_broadcast) {
        teardown_broadcast = true;
        ::close(listen_fd);
        listen_fd = -1;
        for (auto& [fd, s] : sessions) Teardown(s.get());
      }
      FinalizeClosed();
      if (stopping.load() && sessions.empty()) return;

      pfds.clear();
      polled.clear();
      pfds.push_back({wake_read, POLLIN, 0});
      if (listen_fd >= 0) pfds.push_back({listen_fd, POLLIN, 0});
      for (auto& [fd, s] : sessions) {
        if (s->closing.load() || s->draining.load()) continue;
        pfds.push_back({fd, POLLIN, 0});
        polled.push_back(s);
      }
      const int timeout_ms =
          stopping.load() ? 20 : (options.idle_timeout_ms > 0 ? 250 : 1000);
      const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (rc < 0) {
        if (errno != EINTR) return;  // unrecoverable poll failure
        continue;                    // revents are unspecified after EINTR
      }

      size_t i = 0;
      if (pfds[i].revents & POLLIN) {
        char buf[256];
        while (::read(wake_read, buf, sizeof(buf)) > 0) {
        }
      }
      ++i;
      if (listen_fd >= 0) {
        if (pfds[i].revents & (POLLIN | POLLERR)) AcceptRound();
        ++i;
      }
      for (size_t k = 0; k < polled.size(); ++k, ++i) {
        if (pfds[i].revents == 0) continue;
        ReadSession(polled[k].get());
      }
      SweepIdle();
    }
  }

  void AcceptRound() {
    static metrics::Counter& accepted =
        metrics::Registry::Global().counter("dslog.server.accepted");
    static metrics::Counter& shed =
        metrics::Registry::Global().counter("dslog.server.overloaded");
    for (int round = 0; round < 64; ++round) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      if (static_cast<int>(sessions.size()) >= options.max_sessions) {
        // Admission control bound 1: never a session, answered typed.
        std::string frame;
        AppendFrame(&frame, Opcode::kOverloaded, 0,
                    EncodeStatusPayload(Status::Unavailable(
                        "server at max_sessions capacity")));
        [[maybe_unused]] ssize_t r =
            ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
        ::close(fd);
        shed.Increment();
        continue;
      }
      SetNonBlocking(fd);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      sessions.emplace(fd,
                       std::make_shared<Session>(fd, options.max_frame_bytes));
      session_count.store(static_cast<int64_t>(sessions.size()),
                          std::memory_order_relaxed);
      session_gauge().Set(static_cast<int64_t>(sessions.size()));
      accepted.Increment();
    }
  }

  static metrics::Gauge& session_gauge() {
    static metrics::Gauge& g =
        metrics::Registry::Global().gauge("dslog.server.active_sessions");
    return g;
  }

  void ReadSession(Session* s) {
    if (s->closing.load() || s->draining.load()) return;
    char buf[16384];
    for (int round = 0; round < 8; ++round) {
      const ssize_t n = ::recv(s->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        s->last_progress_ms = NowMs();
        s->decoder.Append(std::string_view(buf, static_cast<size_t>(n)));
        if (!DrainFrames(s)) return;
        if (n < static_cast<ssize_t>(sizeof(buf))) return;
        continue;
      }
      if (n == 0) {  // orderly EOF: the client is gone
        Teardown(s);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Teardown(s);
      return;
    }
  }

  // Extracts and dispatches every complete frame. false = session left the
  // readable state (teardown or drain started).
  bool DrainFrames(Session* s) {
    static metrics::Counter& proto_errors =
        metrics::Registry::Global().counter("dslog.server.protocol_errors");
    static metrics::Counter& cancels =
        metrics::Registry::Global().counter("dslog.server.cancel_frames");
    Frame f;
    for (;;) {
      Result<bool> r = s->decoder.Next(&f);
      if (!r.ok()) {
        // Frame boundaries are lost; best effort is a typed parting error.
        proto_errors.Increment();
        ProtocolError(s, r.status());
        return false;
      }
      if (!r.value()) return true;
      if (f.opcode == static_cast<uint8_t>(Opcode::kCancel)) {
        // Out-of-band by design: acts on the in-flight request *now*,
        // without queueing behind it.
        cancels.Increment();
        std::lock_guard<std::mutex> lk(s->mu);
        if (s->active_cancel) s->active_cancel->Cancel();
        continue;
      }
      if (!Enqueue(s, std::move(f))) return false;
    }
  }

  // Queues one request on the session's serialized lane, applying
  // admission-control bounds 2 (global in-flight -> shed) and 3 (per-
  // session pipeline -> teardown).
  bool Enqueue(Session* s, Frame f) {
    static metrics::Counter& shed =
        metrics::Registry::Global().counter("dslog.server.overloaded");
    static metrics::Counter& floods =
        metrics::Registry::Global().counter("dslog.server.pipeline_floods");
    Pending p;
    p.frame = std::move(f);
    if (inflight.load(std::memory_order_relaxed) >=
        options.max_inflight_requests) {
      p.shed = true;
      shed.Increment();
    } else {
      p.counted = true;
      inflight.fetch_add(1, std::memory_order_relaxed);
    }
    bool start_lane = false;
    {
      std::lock_guard<std::mutex> lk(s->mu);
      if (static_cast<int>(s->pending.size()) >=
          options.max_pipelined_per_session) {
        if (p.counted) inflight.fetch_sub(1, std::memory_order_relaxed);
        floods.Increment();
        TeardownLocked(s);
        return false;
      }
      s->pending.push_back(std::move(p));
      if (!s->running) {
        s->running = true;
        start_lane = true;
      }
    }
    if (start_lane) {
      std::shared_ptr<Session> sp = sessions.at(s->fd);
      Submit([this, sp] { RunLane(sp); });
    }
    return true;
  }

  // Queues a courtesy typed error and stops reading; the lane emits every
  // already-queued response, then the error, then the session closes.
  void ProtocolError(Session* s, const Status& status) {
    s->draining.store(true);
    bool start_lane = false;
    {
      std::lock_guard<std::mutex> lk(s->mu);
      Pending p;
      p.error = status;
      s->pending.push_back(std::move(p));
      if (!s->running) {
        s->running = true;
        start_lane = true;
      }
    }
    if (start_lane) {
      std::shared_ptr<Session> sp = sessions.at(s->fd);
      Submit([this, sp] { RunLane(sp); });
    }
  }

  // Hard teardown: cancel the in-flight query, drop queued work. The
  // reactor's FinalizeClosed() reaps the session once its lane stops.
  void Teardown(Session* s) {
    std::lock_guard<std::mutex> lk(s->mu);
    TeardownLocked(s);
  }

  void TeardownLocked(Session* s) {
    s->closing.store(true);
    if (s->active_cancel) s->active_cancel->Cancel();
  }

  void SweepIdle() {
    if (options.idle_timeout_ms <= 0) return;
    static metrics::Counter& idle =
        metrics::Registry::Global().counter("dslog.server.idle_timeouts");
    const int64_t now = NowMs();
    for (auto& [fd, s] : sessions) {
      if (s->closing.load() || s->draining.load()) continue;
      // Only a *stalled obligation* times out: a partial frame in the
      // decoder (slow loris) or a connection that never said Hello. A
      // quiet session between complete requests lives forever.
      const bool mid_frame = s->decoder.buffered() > 0;
      if (!mid_frame && s->hello_done.load()) continue;
      if (now - s->last_progress_ms > options.idle_timeout_ms) {
        idle.Increment();
        Teardown(s.get());
      }
    }
  }

  // Reaps sessions whose teardown completed (closing set, lane stopped).
  void FinalizeClosed() {
    for (auto it = sessions.begin(); it != sessions.end();) {
      Session* s = it->second.get();
      bool reap = false;
      if (s->closing.load()) {
        std::lock_guard<std::mutex> lk(s->mu);
        if (!s->running) {
          DropPendingLocked(s);
          reap = true;
        }
      }
      it = reap ? sessions.erase(it) : std::next(it);
    }
    session_count.store(static_cast<int64_t>(sessions.size()),
                        std::memory_order_relaxed);
    session_gauge().Set(static_cast<int64_t>(sessions.size()));
  }

  void DropPendingLocked(Session* s) {
    for (const Pending& p : s->pending) {
      if (p.counted) inflight.fetch_sub(1, std::memory_order_relaxed);
    }
    s->pending.clear();
  }

  // --------------------------------------------------------- worker lane --

  void RunLane(std::shared_ptr<Session> s) {
    for (;;) {
      Pending req;
      {
        std::unique_lock<std::mutex> lk(s->mu);
        if (s->closing.load()) {
          DropPendingLocked(s.get());
          s->running = false;
          lk.unlock();
          Wake();
          return;
        }
        if (s->pending.empty()) {
          s->running = false;
          const bool drained = s->draining.load();
          lk.unlock();
          if (drained) {
            s->closing.store(true);
            Wake();
          }
          return;
        }
        req = std::move(s->pending.front());
        s->pending.pop_front();
      }
      if (req.shed) {
        WriteResponse(s.get(), Opcode::kOverloaded, req.frame.request_id,
                      EncodeStatusPayload(Status::Unavailable(
                          "server overloaded: in-flight request limit")));
        continue;
      }
      if (!req.error.ok()) {
        WriteResponse(s.get(), Opcode::kError, req.frame.request_id,
                      EncodeStatusPayload(req.error));
        continue;
      }
      HandleRequest(s.get(), req.frame);
      if (req.counted) inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void WriteResponse(Session* s, Opcode opcode, uint32_t request_id,
                     std::string_view payload) {
    static metrics::Counter& bytes_out =
        metrics::Registry::Global().counter("dslog.server.bytes_written");
    static metrics::Counter& oversize =
        metrics::Registry::Global().counter("dslog.server.oversize_responses");
    // A response the client's decoder would reject (it sizes its decoder
    // to our advertised cap) must not be sent: the client would declare
    // the stream unsalvageable. Answer with a small typed error instead.
    if (static_cast<int64_t>(payload.size()) > options.max_frame_bytes) {
      oversize.Increment();
      const std::string err = EncodeStatusPayload(Status::OutOfRange(
          "response of " + std::to_string(payload.size()) +
          " bytes exceeds the frame limit"));
      if (opcode == Opcode::kError ||
          static_cast<int64_t>(err.size()) > options.max_frame_bytes) {
        Teardown(s);  // even the error is unrepresentable within the cap
        return;
      }
      WriteResponse(s, Opcode::kError, request_id, err);
      return;
    }
    std::string frame;
    frame.reserve(payload.size() + 9);
    AppendFrame(&frame, opcode, request_id, payload);
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(s->fd, frame.data() + off, frame.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{s->fd, POLLOUT, 0};
        const int rc = ::poll(&pfd, 1, options.write_timeout_ms);
        if (rc > 0 || (rc < 0 && errno == EINTR)) continue;
        // Receiver stopped draining: give up on the connection rather
        // than block a worker forever.
        Teardown(s);
        return;
      }
      Teardown(s);  // EPIPE / ECONNRESET / ...
      return;
    }
    bytes_out.Add(static_cast<int64_t>(frame.size()));
  }

  void WriteError(Session* s, uint32_t request_id, const Status& status) {
    WriteResponse(s, Opcode::kError, request_id, EncodeStatusPayload(status));
  }

  // ------------------------------------------------------------ handlers --

  void HandleRequest(Session* s, const Frame& frame) {
    static metrics::Counter& requests =
        metrics::Registry::Global().counter("dslog.server.requests");
    requests.Increment();
    const Opcode op = static_cast<Opcode>(frame.opcode);
    if (!s->hello_done.load() && op != Opcode::kHello) {
      WriteError(s, frame.request_id,
                 Status::InvalidArgument("first frame must be Hello"));
      s->closing.store(true);
      return;
    }
    switch (op) {
      case Opcode::kHello:
        return HandleHello(s, frame);
      case Opcode::kOpenStore:
        return HandleOpenStore(s, frame);
      case Opcode::kDefineArray:
        return HandleDefineArray(s, frame);
      case Opcode::kReserveIds:
        return HandleReserveIds(s, frame);
      case Opcode::kIngestBatch:
        return HandleIngestBatch(s, frame);
      case Opcode::kDrain:
        return HandleDrain(s, frame);
      case Opcode::kQuery:
        return HandleQuery(s, frame);
      case Opcode::kStats:
        return HandleStats(s, frame);
      case Opcode::kBye:
        WriteResponse(s, Opcode::kByeOk, frame.request_id, "");
        s->closing.store(true);
        return;
      default:
        // Unknown opcode with intact framing: typed error, session lives.
        WriteError(s, frame.request_id,
                   Status::InvalidArgument(
                       "unknown opcode " + std::to_string(frame.opcode)));
        return;
    }
  }

  void HandleHello(Session* s, const Frame& frame) {
    HelloRequest req;
    if (s->hello_done.load() || !HelloRequest::Decode(frame.payload, &req)) {
      WriteError(s, frame.request_id,
                 Status::InvalidArgument("malformed or repeated Hello"));
      s->closing.store(true);
      return;
    }
    if (req.magic != kMagic) {
      WriteError(s, frame.request_id,
                 Status::InvalidArgument("bad protocol magic"));
      s->closing.store(true);
      return;
    }
    if (req.version != kProtocolVersion) {
      WriteError(s, frame.request_id,
                 Status::NotSupported("unsupported protocol version " +
                                      std::to_string(req.version)));
      s->closing.store(true);
      return;
    }
    HelloResponse resp;
    resp.server_name = options.server_name;
    resp.max_frame_bytes = options.max_frame_bytes;
    s->hello_done.store(true);
    WriteResponse(s, Opcode::kHelloOk, frame.request_id, resp.Encode());
  }

  void HandleOpenStore(Session* s, const Frame& frame) {
    OpenStoreRequest req;
    if (!OpenStoreRequest::Decode(frame.payload, &req)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("malformed OpenStore"));
    }
    if (!ValidStoreName(req.store)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("invalid store name"));
    }
    if (s->stager && s->stager->staged() > 0) {
      return WriteError(
          s, frame.request_id,
          Status::InvalidArgument(
              "session holds staged ingest; Drain before switching stores"));
    }
    std::shared_ptr<TenantStore> store;
    {
      std::lock_guard<std::mutex> lk(stores_mu);
      auto it = stores.find(req.store);
      if (it != stores.end()) {
        store = it->second;
      } else if (req.create && options.allow_create_store) {
        store = std::make_shared<TenantStore>(DSLog());
        stores.emplace(req.store, store);
      }
    }
    if (!store) {
      return WriteError(s, frame.request_id,
                        Status::NotFound("no store named " + req.store));
    }
    s->store = std::move(store);
    s->stager = std::make_unique<StagedIngest>(&s->store->log);
    WriteResponse(s, Opcode::kOpenStoreOk, frame.request_id, "");
  }

  bool RequireStore(Session* s, const Frame& frame) {
    if (s->store) return true;
    WriteError(s, frame.request_id,
               Status::InvalidArgument("no store open; send OpenStore first"));
    return false;
  }

  void HandleDefineArray(Session* s, const Frame& frame) {
    DefineArrayRequest req;
    if (!DefineArrayRequest::Decode(frame.payload, &req)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("malformed DefineArray"));
    }
    if (!RequireStore(s, frame)) return;
    const Status st =
        s->store->log.DefineArray(req.name, std::move(req.shape));
    if (!st.ok()) return WriteError(s, frame.request_id, st);
    WriteResponse(s, Opcode::kDefineArrayOk, frame.request_id, "");
  }

  void HandleReserveIds(Session* s, const Frame& frame) {
    ReserveIdsRequest req;
    if (!ReserveIdsRequest::Decode(frame.payload, &req) || req.count == 0 ||
        req.count > (1u << 20)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("invalid ReserveIds count"));
    }
    if (!RequireStore(s, frame)) return;
    ReserveIdsResponse resp;
    resp.base = s->store->next_op_id.fetch_add(req.count);
    resp.count = req.count;
    WriteResponse(s, Opcode::kReserveIdsOk, frame.request_id, resp.Encode());
  }

  void HandleIngestBatch(Session* s, const Frame& frame) {
    static metrics::Counter& staged_ops =
        metrics::Registry::Global().counter("dslog.server.ingest_ops");
    IngestBatchRequest req;
    if (!IngestBatchRequest::Decode(frame.payload, &req)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("malformed IngestBatch"));
    }
    if (!RequireStore(s, frame)) return;
    for (size_t i = 0; i < req.ops.size(); ++i) {
      if (req.ops[i].op_id == 0) {
        return WriteError(s, frame.request_id,
                          Status::InvalidArgument(
                              "op " + std::to_string(i) +
                              " carries no reserved id (ReserveIds first)"));
      }
      const Status st = s->stager->Add(std::move(req.ops[i].reg));
      if (!st.ok()) {
        return WriteError(s, frame.request_id,
                          st.WithMessagePrefix("staging op " +
                                               std::to_string(i) + ": "));
      }
    }
    staged_ops.Add(static_cast<int64_t>(req.ops.size()));
    IngestBatchResponse resp;
    resp.staged = s->stager->staged();
    WriteResponse(s, Opcode::kIngestBatchOk, frame.request_id, resp.Encode());
  }

  void HandleDrain(Session* s, const Frame& frame) {
    if (!RequireStore(s, frame)) return;
    Result<std::vector<ReuseOutcome>> r = s->stager->Drain();
    if (!r.ok()) return WriteError(s, frame.request_id, r.status());
    DrainResponse resp;
    resp.outcomes = std::move(r).value();
    WriteResponse(s, Opcode::kDrainOk, frame.request_id, resp.Encode());
  }

  void HandleQuery(Session* s, const Frame& frame) {
    static metrics::Counter& queries =
        metrics::Registry::Global().counter("dslog.server.queries");
    static metrics::Counter& cancelled =
        metrics::Registry::Global().counter("dslog.server.queries_cancelled");
    QueryRequest req;
    if (!QueryRequest::Decode(frame.payload, &req)) {
      return WriteError(s, frame.request_id,
                        Status::InvalidArgument("malformed Query"));
    }
    if (!RequireStore(s, frame)) return;
    queries.Increment();
    auto token = std::make_shared<CancelToken>();
    {
      std::lock_guard<std::mutex> lk(s->mu);
      // A teardown that raced the install would have missed this token.
      if (s->closing.load()) token->Cancel();
      s->active_cancel = token;
    }
    QueryOptions qo = req.options;
    qo.num_threads =
        std::clamp(qo.num_threads, 1, std::max(1, options.query_threads_cap));
    qo.cancel = token.get();
    QueryProfile profile;
    Result<BoxTable> r = s->store->log.ProvQuery(
        req.path, req.query, qo, qo.profile ? &profile : nullptr);
    {
      std::lock_guard<std::mutex> lk(s->mu);
      if (s->active_cancel == token) s->active_cancel.reset();
    }
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kCancelled) cancelled.Increment();
      return WriteError(s, frame.request_id, r.status());
    }
    QueryResponse resp;
    resp.result = std::move(r).value();
    if (qo.profile) resp.profile_json = profile.ToJson();
    WriteResponse(s, Opcode::kQueryOk, frame.request_id, resp.Encode());
  }

  void HandleStats(Session* s, const Frame& frame) {
    StatsResponse resp;
    resp.json = "{\"active_sessions\":" +
                std::to_string(session_gauge().Value()) +
                ",\"inflight_requests\":" +
                std::to_string(inflight.load(std::memory_order_relaxed)) +
                ",\"metrics\":" +
                metrics::Registry::Global().Snapshot().ToJson() + "}";
    WriteResponse(s, Opcode::kStatsOk, frame.request_id, resp.Encode());
  }

  // ---------------------------------------------------------------- state --

  ServerOptions options;

  std::mutex stores_mu;
  std::map<std::string, std::shared_ptr<TenantStore>> stores;

  bool started = false;
  bool stopped = false;
  std::atomic<bool> stopping{false};
  std::atomic<int> bound_port{0};
  std::atomic<int64_t> inflight{0};
  /// Per-server live-session count (the global gauge is process-wide and
  /// would conflate concurrently running servers in one test binary).
  std::atomic<int64_t> session_count{0};

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::thread reactor;
  // Reactor-private: fd -> session.
  std::map<int, std::shared_ptr<Session>> sessions;

  std::mutex pool_mu;
  std::condition_variable pool_cv;
  std::deque<std::function<void()>> pool_jobs;
  bool pool_done = false;
  std::vector<std::thread> workers;
};

DslogServer::DslogServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

DslogServer::~DslogServer() { Stop(); }

Status DslogServer::Mount(const std::string& name, DSLog log) {
  if (!ValidStoreName(name))
    return Status::InvalidArgument("invalid store name: " + name);
  std::lock_guard<std::mutex> lk(impl_->stores_mu);
  auto it = impl_->stores.find(name);
  if (it != impl_->stores.end()) {
    if (impl_->started)
      return Status::AlreadyExists("store already mounted: " + name);
    it->second = std::make_shared<Impl::TenantStore>(std::move(log));
    return Status::OK();
  }
  impl_->stores.emplace(name,
                        std::make_shared<Impl::TenantStore>(std::move(log)));
  return Status::OK();
}

Status DslogServer::Start() { return impl_->Start(); }

void DslogServer::Stop() { impl_->Stop(); }

int DslogServer::port() const { return impl_->bound_port.load(); }

int64_t DslogServer::active_sessions() const {
  return impl_->session_count.load(std::memory_order_relaxed);
}

const DSLog* DslogServer::store(const std::string& name) const {
  std::lock_guard<std::mutex> lk(impl_->stores_mu);
  auto it = impl_->stores.find(name);
  return it == impl_->stores.end() ? nullptr : &it->second->log;
}

}  // namespace net
}  // namespace dslog
