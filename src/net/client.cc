#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "compress/varint.h"

namespace dslog {
namespace net {

namespace {

void SetTimeout(int fd, int which, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

}  // namespace

Result<std::unique_ptr<DslogClient>> DslogClient::Connect(
    const std::string& host, int port, const ClientOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("host must be a numeric IPv4 address: " +
                                   host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  // Bounded connect: non-blocking connect + poll, then back to blocking
  // with per-syscall timeouts.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Status::IOError("connect(" + host + ":" + std::to_string(port) +
                             ") failed: " + std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, options.connect_timeout_ms);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status::IOError("connect(" + host + ":" + std::to_string(port) +
                             ") " + (rc == 0 ? "timed out" : "failed"));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetTimeout(fd, SO_RCVTIMEO, options.io_timeout_ms);
  SetTimeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<DslogClient> client(new DslogClient(fd, options));
  HelloRequest hello;
  hello.client_name = options.client_name;
  DSLOG_ASSIGN_OR_RETURN(
      std::string resp,
      client->Roundtrip(Opcode::kHello, hello.Encode(), Opcode::kHelloOk));
  if (!HelloResponse::Decode(resp, &client->hello_))
    return Status::Internal("malformed HelloOk from server");
  return client;
}

DslogClient::DslogClient(int fd, ClientOptions options)
    : fd_(fd),
      options_(std::move(options)),
      decoder_(options_.max_frame_bytes) {}

DslogClient::~DslogClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status DslogClient::SendFrame(Opcode opcode, uint32_t request_id,
                              std::string_view payload) {
  // The server's decoder drops the whole session on an oversized frame;
  // failing here is a typed, recoverable error instead. hello_ holds the
  // protocol default until the handshake overwrites it with the server's
  // advertised cap; a nonsensical advertisement falls back to our own.
  const int64_t limit = hello_.max_frame_bytes > 0 ? hello_.max_frame_bytes
                                                   : options_.max_frame_bytes;
  if (static_cast<int64_t>(payload.size()) > limit)
    return Status::InvalidArgument(
        "request payload of " + std::to_string(payload.size()) +
        " bytes exceeds the server's " + std::to_string(limit) +
        "-byte frame limit");
  std::string frame;
  frame.reserve(payload.size() + 9);
  AppendFrame(&frame, opcode, request_id, payload);
  std::lock_guard<std::mutex> lk(write_mu_);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send failed: ") +
                           ((errno == EAGAIN || errno == EWOULDBLOCK)
                                ? "timed out"
                                : std::strerror(errno)));
  }
  return Status::OK();
}

Result<Frame> DslogClient::ReadFrame() {
  Frame f;
  for (;;) {
    DSLOG_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&f));
    if (complete) return f;
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv failed: ") +
                           ((errno == EAGAIN || errno == EWOULDBLOCK)
                                ? "timed out"
                                : std::strerror(errno)));
  }
}

Result<std::string> DslogClient::Roundtrip(Opcode opcode,
                                           std::string_view payload,
                                           Opcode ok_opcode) {
  const uint32_t id = next_request_id_++;
  DSLOG_RETURN_IF_ERROR(SendFrame(opcode, id, payload));
  DSLOG_ASSIGN_OR_RETURN(Frame resp, ReadFrame());
  // Typed errors first: the accept-overload shed answers with request id 0
  // (no request was ever parsed), so the id check must not mask them.
  if (resp.opcode == static_cast<uint8_t>(Opcode::kError) ||
      resp.opcode == static_cast<uint8_t>(Opcode::kOverloaded))
    return DecodeStatusPayload(resp.payload);
  if (resp.request_id != id)
    return Status::Internal("response id " + std::to_string(resp.request_id) +
                            " does not match request " + std::to_string(id));
  if (resp.opcode != static_cast<uint8_t>(ok_opcode))
    return Status::Internal("unexpected response opcode " +
                            std::to_string(resp.opcode));
  return std::move(resp.payload);
}

Status DslogClient::OpenStore(const std::string& store, bool create) {
  OpenStoreRequest req;
  req.store = store;
  req.create = create;
  return Roundtrip(Opcode::kOpenStore, req.Encode(), Opcode::kOpenStoreOk)
      .status();
}

Status DslogClient::DefineArray(const std::string& name,
                                std::vector<int64_t> shape) {
  DefineArrayRequest req;
  req.name = name;
  req.shape = std::move(shape);
  return Roundtrip(Opcode::kDefineArray, req.Encode(), Opcode::kDefineArrayOk)
      .status();
}

Result<std::pair<uint64_t, uint64_t>> DslogClient::ReserveOpIds(
    uint64_t count) {
  ReserveIdsRequest req;
  req.count = count;
  DSLOG_ASSIGN_OR_RETURN(
      std::string payload,
      Roundtrip(Opcode::kReserveIds, req.Encode(), Opcode::kReserveIdsOk));
  ReserveIdsResponse resp;
  if (!ReserveIdsResponse::Decode(payload, &resp))
    return Status::Internal("malformed ReserveIdsOk");
  return std::make_pair(resp.base, resp.count);
}

Result<int64_t> DslogClient::ShipIngestBlock(uint64_t num_ops,
                                             std::string_view block) {
  std::string payload;
  payload.reserve(block.size() + 4);
  PutVarint64(&payload, num_ops);
  payload.append(block);
  DSLOG_ASSIGN_OR_RETURN(
      std::string resp_bytes,
      Roundtrip(Opcode::kIngestBatch, payload, Opcode::kIngestBatchOk));
  IngestBatchResponse resp;
  if (!IngestBatchResponse::Decode(resp_bytes, &resp))
    return Status::Internal("malformed IngestBatchOk");
  return resp.staged;
}

Result<std::vector<ReuseOutcome>> DslogClient::Drain() {
  DSLOG_ASSIGN_OR_RETURN(std::string payload,
                         Roundtrip(Opcode::kDrain, "", Opcode::kDrainOk));
  DrainResponse resp;
  if (!DrainResponse::Decode(payload, &resp))
    return Status::Internal("malformed DrainOk");
  return std::move(resp.outcomes);
}

Result<BoxTable> DslogClient::Query(const std::vector<std::string>& path,
                                    const BoxTable& query,
                                    const QueryOptions& options,
                                    std::string* profile_json) {
  QueryRequest req;
  req.path = path;
  req.query = query;
  req.options = options;
  DSLOG_ASSIGN_OR_RETURN(
      std::string payload,
      Roundtrip(Opcode::kQuery, req.Encode(), Opcode::kQueryOk));
  QueryResponse resp;
  if (!QueryResponse::Decode(payload, &resp))
    return Status::Internal("malformed QueryOk");
  if (profile_json != nullptr) *profile_json = std::move(resp.profile_json);
  return std::move(resp.result);
}

Status DslogClient::Cancel() {
  // Request id 0: cancels are unacknowledged and correlate with nothing.
  return SendFrame(Opcode::kCancel, 0, "");
}

Result<std::string> DslogClient::ServerStats() {
  DSLOG_ASSIGN_OR_RETURN(std::string payload,
                         Roundtrip(Opcode::kStats, "", Opcode::kStatsOk));
  StatsResponse resp;
  if (!StatsResponse::Decode(payload, &resp))
    return Status::Internal("malformed StatsOk");
  return std::move(resp.json);
}

Status DslogClient::Bye() {
  return Roundtrip(Opcode::kBye, "", Opcode::kByeOk).status();
}

Result<uint64_t> IngestHandle::Add(const OperationRegistration& reg) {
  if (ids_remaining_ == 0) {
    DSLOG_ASSIGN_OR_RETURN(auto block, client_->ReserveOpIds(id_block_size_));
    next_id_ = block.first;
    ids_remaining_ = block.second;
  }
  const uint64_t id = next_id_++;
  --ids_remaining_;
  AppendWireOperation(&block_, id, reg);
  ++ops_in_block_;
  ++ops_added_;
  if (ops_in_block_ >= id_block_size_ ||
      static_cast<int64_t>(block_.size()) >= data_block_bytes_) {
    DSLOG_RETURN_IF_ERROR(Flush());
  }
  return id;
}

Status IngestHandle::Flush() {
  if (ops_in_block_ == 0) return Status::OK();
  // The block is only surrendered on success: a failed ship leaves
  // block_/ops_in_block_ intact, so a retried Flush/Drain resends the same
  // ops instead of an empty block claiming them.
  DSLOG_ASSIGN_OR_RETURN(int64_t staged,
                         client_->ShipIngestBlock(ops_in_block_, block_));
  (void)staged;
  block_.clear();
  ops_in_block_ = 0;
  ++blocks_shipped_;
  return Status::OK();
}

Result<std::vector<ReuseOutcome>> IngestHandle::Drain() {
  DSLOG_RETURN_IF_ERROR(Flush());
  return client_->Drain();
}

}  // namespace net
}  // namespace dslog
