#include "net/protocol.h"

#include "compress/varint.h"

namespace dslog {
namespace net {

namespace {

// An operation touches a handful of arrays; a forged input count cannot be
// legitimate past this.
constexpr uint64_t kMaxWireInputs = 64;

bool AtEnd(std::string_view payload, size_t pos) {
  return pos == payload.size();
}

}  // namespace

std::string HelloRequest::Encode() const {
  std::string p;
  PutFixed32(&p, magic);
  PutFixed32(&p, version);
  PutString(&p, client_name);
  return p;
}

bool HelloRequest::Decode(std::string_view payload, HelloRequest* out) {
  size_t pos = 0;
  return GetFixed32(payload, &pos, &out->magic) &&
         GetFixed32(payload, &pos, &out->version) &&
         GetString(payload, &pos, &out->client_name) && AtEnd(payload, pos);
}

std::string HelloResponse::Encode() const {
  std::string p;
  PutFixed32(&p, version);
  PutString(&p, server_name);
  PutVarint64(&p, static_cast<uint64_t>(max_frame_bytes));
  return p;
}

bool HelloResponse::Decode(std::string_view payload, HelloResponse* out) {
  size_t pos = 0;
  uint64_t max_frame = 0;
  if (!GetFixed32(payload, &pos, &out->version) ||
      !GetString(payload, &pos, &out->server_name) ||
      !GetVarint64(payload, &pos, &max_frame) || !AtEnd(payload, pos)) {
    return false;
  }
  out->max_frame_bytes = static_cast<int64_t>(max_frame);
  return true;
}

std::string OpenStoreRequest::Encode() const {
  std::string p;
  PutString(&p, store);
  PutBool(&p, create);
  return p;
}

bool OpenStoreRequest::Decode(std::string_view payload, OpenStoreRequest* out) {
  size_t pos = 0;
  return GetString(payload, &pos, &out->store) &&
         GetBool(payload, &pos, &out->create) && AtEnd(payload, pos);
}

std::string DefineArrayRequest::Encode() const {
  std::string p;
  PutString(&p, name);
  PutInt64Vector(&p, shape);
  return p;
}

bool DefineArrayRequest::Decode(std::string_view payload,
                                DefineArrayRequest* out) {
  size_t pos = 0;
  return GetString(payload, &pos, &out->name) &&
         GetInt64Vector(payload, &pos, &out->shape) && AtEnd(payload, pos);
}

std::string ReserveIdsRequest::Encode() const {
  std::string p;
  PutVarint64(&p, count);
  return p;
}

bool ReserveIdsRequest::Decode(std::string_view payload,
                               ReserveIdsRequest* out) {
  size_t pos = 0;
  return GetVarint64(payload, &pos, &out->count) && AtEnd(payload, pos);
}

std::string ReserveIdsResponse::Encode() const {
  std::string p;
  PutVarint64(&p, base);
  PutVarint64(&p, count);
  return p;
}

bool ReserveIdsResponse::Decode(std::string_view payload,
                                ReserveIdsResponse* out) {
  size_t pos = 0;
  return GetVarint64(payload, &pos, &out->base) &&
         GetVarint64(payload, &pos, &out->count) && AtEnd(payload, pos);
}

void AppendWireOperation(std::string* dst, uint64_t op_id,
                         const OperationRegistration& reg) {
  PutVarint64(dst, op_id);
  PutString(dst, reg.op_name);
  PutVarint64(dst, reg.in_arrs.size());
  for (const std::string& a : reg.in_arrs) PutString(dst, a);
  PutString(dst, reg.out_arr);
  PutVarint64(dst, reg.captured.size());
  for (const LineageRelation& rel : reg.captured) PutLineageRelation(dst, rel);
  reg.args.AppendTo(dst);
  PutFixed64(dst, reg.content_hash);
  PutBool(dst, reg.reuse);
}

bool GetWireOperation(std::string_view src, size_t* pos, WireOperation* out) {
  if (!GetVarint64(src, pos, &out->op_id)) return false;
  OperationRegistration& reg = out->reg;
  reg = OperationRegistration();
  if (!GetString(src, pos, &reg.op_name)) return false;
  uint64_t n_in = 0;
  if (!GetVarint64(src, pos, &n_in)) return false;
  if (n_in > kMaxWireInputs) return false;
  reg.in_arrs.resize(n_in);
  for (uint64_t i = 0; i < n_in; ++i) {
    if (!GetString(src, pos, &reg.in_arrs[i])) return false;
  }
  if (!GetString(src, pos, &reg.out_arr)) return false;
  uint64_t n_cap = 0;
  if (!GetVarint64(src, pos, &n_cap)) return false;
  if (n_cap > kMaxWireInputs) return false;
  reg.captured.resize(n_cap);
  for (uint64_t i = 0; i < n_cap; ++i) {
    if (!GetLineageRelation(src, pos, &reg.captured[i])) return false;
  }
  if (!reg.args.ParseFrom(src, pos)) return false;
  if (!GetFixed64(src, pos, &reg.content_hash)) return false;
  return GetBool(src, pos, &reg.reuse);
}

std::string IngestBatchRequest::Encode() const {
  std::string p;
  PutVarint64(&p, ops.size());
  for (const WireOperation& op : ops) AppendWireOperation(&p, op.op_id, op.reg);
  return p;
}

bool IngestBatchRequest::Decode(std::string_view payload,
                                IngestBatchRequest* out) {
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetVarint64(payload, &pos, &n)) return false;
  if (n > payload.size() - pos) return false;
  // Decode incrementally: a WireOperation is hundreds of bytes in memory
  // but can be forged in ~1 wire byte, so an up-front resize(n) would let
  // one frame balloon an allocation ~200x past the payload it carries.
  out->ops.clear();
  for (uint64_t i = 0; i < n; ++i) {
    out->ops.emplace_back();
    if (!GetWireOperation(payload, &pos, &out->ops.back())) return false;
  }
  return AtEnd(payload, pos);
}

std::string IngestBatchResponse::Encode() const {
  std::string p;
  PutVarint64(&p, static_cast<uint64_t>(staged));
  return p;
}

bool IngestBatchResponse::Decode(std::string_view payload,
                                 IngestBatchResponse* out) {
  size_t pos = 0;
  uint64_t staged = 0;
  if (!GetVarint64(payload, &pos, &staged) || !AtEnd(payload, pos))
    return false;
  out->staged = static_cast<int64_t>(staged);
  return true;
}

std::string DrainResponse::Encode() const {
  std::string p;
  PutVarint64(&p, outcomes.size());
  for (const ReuseOutcome& o : outcomes) {
    p.push_back(static_cast<char>((o.base_hit ? 1 : 0) | (o.dim_hit ? 2 : 0) |
                                  (o.gen_hit ? 4 : 0)));
  }
  return p;
}

bool DrainResponse::Decode(std::string_view payload, DrainResponse* out) {
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetVarint64(payload, &pos, &n)) return false;
  if (n != payload.size() - pos) return false;
  out->outcomes.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t bits = static_cast<uint8_t>(payload[pos++]);
    if (bits > 7) return false;
    out->outcomes[i].base_hit = (bits & 1) != 0;
    out->outcomes[i].dim_hit = (bits & 2) != 0;
    out->outcomes[i].gen_hit = (bits & 4) != 0;
  }
  return true;
}

std::string QueryRequest::Encode() const {
  std::string p;
  PutVarint64(&p, path.size());
  for (const std::string& a : path) PutString(&p, a);
  PutBoxTable(&p, query);
  PutQueryOptions(&p, options);
  return p;
}

bool QueryRequest::Decode(std::string_view payload, QueryRequest* out) {
  size_t pos = 0;
  uint64_t n = 0;
  if (!GetVarint64(payload, &pos, &n)) return false;
  if (n > payload.size() - pos) return false;
  // push_back, not resize(n): a forged count must not allocate 32x the
  // bytes actually present (sizeof(std::string) per 1-byte wire entry).
  out->path.clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string elem;
    if (!GetString(payload, &pos, &elem)) return false;
    out->path.push_back(std::move(elem));
  }
  return GetBoxTable(payload, &pos, &out->query) &&
         GetQueryOptions(payload, &pos, &out->options) && AtEnd(payload, pos);
}

std::string QueryResponse::Encode() const {
  std::string p;
  PutBoxTable(&p, result);
  PutString(&p, profile_json);
  return p;
}

bool QueryResponse::Decode(std::string_view payload, QueryResponse* out) {
  size_t pos = 0;
  return GetBoxTable(payload, &pos, &out->result) &&
         GetString(payload, &pos, &out->profile_json) && AtEnd(payload, pos);
}

std::string StatsResponse::Encode() const {
  std::string p;
  PutString(&p, json);
  return p;
}

bool StatsResponse::Decode(std::string_view payload, StatsResponse* out) {
  size_t pos = 0;
  return GetString(payload, &pos, &out->json) && AtEnd(payload, pos);
}

std::string EncodeStatusPayload(const Status& status) {
  std::string p;
  PutStatus(&p, status);
  return p;
}

Status DecodeStatusPayload(std::string_view payload) {
  size_t pos = 0;
  Status status;
  if (!GetStatus(payload, &pos, &status) || pos != payload.size())
    return Status::Internal("malformed error payload from peer");
  return status;
}

}  // namespace net
}  // namespace dslog
