// dslog_server: serves mounted DSLog stores (or a fresh in-memory
// namespace per tenant) over the framed TCP protocol of src/net/.
//
//   dslog_server [--host 127.0.0.1] [--port 7433] [--workers N]
//                [--max-sessions N] [--no-create]
//                [--mount name=path.dsl ...]
//
// Each --mount opens a LogStore file in-situ under the given tenant name.
// Without --no-create, clients may also create fresh in-memory namespaces
// with OpenStore{create=true}. SIGINT/SIGTERM stop the server cleanly.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "net/server.h"
#include "storage/dslog.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  dslog::net::ServerOptions options;
  options.port = 7433;
  std::vector<std::pair<std::string, std::string>> mounts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--workers") {
      options.worker_threads = std::atoi(next());
    } else if (arg == "--max-sessions") {
      options.max_sessions = std::atoi(next());
    } else if (arg == "--no-create") {
      options.allow_create_store = false;
    } else if (arg == "--mount") {
      const std::string spec = next();
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--mount expects name=path.dsl, got %s\n",
                     spec.c_str());
        return 2;
      }
      mounts.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  dslog::net::DslogServer server(options);
  for (const auto& [name, path] : mounts) {
    auto opened = dslog::DSLog::OpenInSitu(path);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot mount %s from %s: %s\n", name.c_str(),
                   path.c_str(), opened.status().ToString().c_str());
      return 1;
    }
    const dslog::Status st = server.Mount(name, std::move(opened).value());
    if (!st.ok()) {
      std::fprintf(stderr, "cannot mount %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  const dslog::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("dslog_server listening on port %d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(50'000);
  }
  server.Stop();
  std::printf("clean shutdown\n");
  return 0;
}
