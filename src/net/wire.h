// Wire layer of the lineage service: the framed binary protocol shared by
// dslog_server and the client library. A connection is a byte stream of
// frames:
//
//   +----------------+--------+-------------+----------------------+
//   | u32 len (LE)   | u8 op  | u32 req (LE)| payload (len-5 bytes)|
//   +----------------+--------+-------------+----------------------+
//
// `len` counts everything after itself (opcode + request id + payload), so
// the minimum legal value is 5. Responses echo the request's id; the
// request ids of one session are client-chosen and need not be unique or
// ordered (the server serializes one session's requests anyway). Payloads
// reuse the storage layer's varint/zigzag primitives (compress/varint.h),
// so a BoxTable on the wire costs about what it costs in a LogStore
// footer.
//
// Robustness contract: FrameDecoder never trusts a length prefix — an
// oversized or undersized length fails *immediately* (before buffering the
// advertised bytes), and every payload codec below bounds its element
// counts by the bytes actually present, so a forged count can never
// balloon an allocation. Decode errors are Status values, never crashes;
// the server answers them with a typed error frame and tears the session
// down if the stream can no longer be re-synchronized.

#ifndef DSLOG_NET_WIRE_H_
#define DSLOG_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "array/op.h"
#include "common/result.h"
#include "common/status.h"
#include "lineage/lineage_relation.h"
#include "query/box.h"
#include "query/query_engine.h"

namespace dslog {
namespace net {

/// First payload field of a Hello frame; spells "DSLN" on the wire.
inline constexpr uint32_t kMagic = 0x4E4C5344;
inline constexpr uint32_t kProtocolVersion = 1;

/// Frame bytes after the length field that are not payload (opcode + id).
inline constexpr uint32_t kFrameOverhead = 5;

/// Default cap on one frame's payload. Generous for ingest data blocks,
/// small enough that a forged length prefix cannot look plausible.
inline constexpr int64_t kDefaultMaxFrameBytes = 64LL << 20;

/// Request opcodes occupy [0x01, 0x7F]; a response is its request | 0x80.
/// kError / kOverloaded answer any request.
enum class Opcode : uint8_t {
  kHello = 0x01,
  kOpenStore = 0x02,
  kDefineArray = 0x03,
  kReserveIds = 0x04,
  kIngestBatch = 0x05,
  kDrain = 0x06,
  kQuery = 0x07,
  kStats = 0x08,
  kBye = 0x09,
  /// Out-of-band: handled by the server's reactor the moment it is read
  /// (never queued behind the session's in-flight request) and has no
  /// response frame, so a blocked requester thread can be cancelled from
  /// another thread over the same socket.
  kCancel = 0x20,

  kHelloOk = 0x81,
  kOpenStoreOk = 0x82,
  kDefineArrayOk = 0x83,
  kReserveIdsOk = 0x84,
  kIngestBatchOk = 0x85,
  kDrainOk = 0x86,
  kQueryOk = 0x87,
  kStatsOk = 0x88,
  kByeOk = 0x89,
  /// Typed failure: payload is an encoded Status.
  kError = 0xF0,
  /// Typed admission-control shed: payload is an encoded Status with code
  /// kUnavailable. Distinct opcode so a client can count sheds without
  /// parsing payloads.
  kOverloaded = 0xF1,
};

/// One decoded frame.
struct Frame {
  uint8_t opcode = 0;
  uint32_t request_id = 0;
  std::string payload;
};

/// Appends one complete frame (length, header, payload) to `dst`.
void AppendFrame(std::string* dst, Opcode opcode, uint32_t request_id,
                 std::string_view payload);

/// Incremental frame extractor over an arbitrary chunking of the stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(int64_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_payload_(max_frame_bytes) {}

  void Append(std::string_view bytes) { buf_.append(bytes); }

  /// Extracts the next complete frame into `out`. true = frame produced;
  /// false = the buffer holds no complete frame yet (read more bytes). An
  /// error Status means the stream is unsalvageable (length prefix shorter
  /// than a header or beyond the payload cap) — the connection must be
  /// torn down, since frame boundaries are lost.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by a produced frame. Non-zero
  /// after draining Next() means a partial frame is in flight — the
  /// condition the server's slow-loris idle sweep keys on.
  int64_t buffered() const { return static_cast<int64_t>(buf_.size() - pos_); }

 private:
  int64_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;
};

// ------------------------------------------------------- payload codecs --
// All Get* functions decode at `*pos`, advance it on success, and return
// false on truncation or malformed bytes (partial writes into out-params
// are allowed; callers discard on failure).

void PutString(std::string* dst, std::string_view s);
bool GetString(std::string_view src, size_t* pos, std::string* out);

void PutBool(std::string* dst, bool v);
bool GetBool(std::string_view src, size_t* pos, bool* out);

/// Status: u8 code + message. Unknown code bytes decode as kInternal
/// (forward compatibility) rather than failing.
void PutStatus(std::string* dst, const Status& status);
bool GetStatus(std::string_view src, size_t* pos, Status* out);

/// Shapes and other small int64 vectors: varint count + zigzag elements.
void PutInt64Vector(std::string* dst, const std::vector<int64_t>& v);
bool GetInt64Vector(std::string_view src, size_t* pos,
                    std::vector<int64_t>* out);

/// BoxTable: varint ndim + varint num_boxes + zigzag lo/hi stream. The
/// decode is exact — boxes come back bit-for-bit in the original order,
/// which is what lets the differential suite compare server answers
/// against the in-process oracle without set-normalization.
void PutBoxTable(std::string* dst, const BoxTable& table);
bool GetBoxTable(std::string_view src, size_t* pos, BoxTable* out);

/// LineageRelation: ndims + shapes + varint row count + zigzag tuples.
void PutLineageRelation(std::string* dst, const LineageRelation& rel);
bool GetLineageRelation(std::string_view src, size_t* pos,
                        LineageRelation* out);

/// The QueryOptions fields that travel (merge/threads/join_path/profile).
/// `cancel` stays host-local: the server arms its own per-request token.
void PutQueryOptions(std::string* dst, const QueryOptions& options);
bool GetQueryOptions(std::string_view src, size_t* pos, QueryOptions* out);

}  // namespace net
}  // namespace dslog

#endif  // DSLOG_NET_WIRE_H_
