#include "net/wire.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "common/check.h"
#include "compress/varint.h"
#include "provrc/interval.h"

namespace dslog {
namespace net {

namespace {

// Decoded dimensionalities are bounded well below anything a legitimate
// array store produces, so a forged ndim cannot drive quadratic work.
constexpr uint64_t kMaxWireNdim = 64;

}  // namespace

void AppendFrame(std::string* dst, Opcode opcode, uint32_t request_id,
                 std::string_view payload) {
  // The length prefix is 32-bit; a payload the prefix cannot represent
  // would silently corrupt the stream. Senders bound payloads against the
  // negotiated max_frame_bytes long before this, so tripping here is a
  // caller bug, not remote input.
  DSLOG_CHECK(payload.size() <=
              std::numeric_limits<uint32_t>::max() - kFrameOverhead);
  PutFixed32(dst, static_cast<uint32_t>(payload.size()) + kFrameOverhead);
  dst->push_back(static_cast<char>(opcode));
  PutFixed32(dst, request_id);
  dst->append(payload);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  const std::string_view view(buf_);
  size_t pos = pos_;
  uint32_t len = 0;
  if (!GetFixed32(view, &pos, &len)) return false;  // need more bytes
  if (len < kFrameOverhead)
    return Status::Corruption("frame length " + std::to_string(len) +
                              " shorter than frame header");
  const int64_t payload_len = static_cast<int64_t>(len) - kFrameOverhead;
  if (payload_len > max_payload_)
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_payload_) + "-byte limit");
  if (view.size() - pos < len) return false;  // announced bytes not here yet
  out->opcode = static_cast<uint8_t>(view[pos++]);
  if (!GetFixed32(view, &pos, &out->request_id))
    return Status::Corruption("frame header truncated");
  out->payload.assign(view.substr(pos, static_cast<size_t>(payload_len)));
  pos_ = pos + static_cast<size_t>(payload_len);
  // Reclaim consumed bytes once they dominate the buffer, so a long-lived
  // session does not retain its high-water mark forever.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

void PutString(std::string* dst, std::string_view s) {
  PutLengthPrefixed(dst, s);
}

bool GetString(std::string_view src, size_t* pos, std::string* out) {
  return GetLengthPrefixed(src, pos, out);
}

void PutBool(std::string* dst, bool v) {
  dst->push_back(v ? '\x01' : '\x00');
}

bool GetBool(std::string_view src, size_t* pos, bool* out) {
  if (*pos >= src.size()) return false;
  *out = src[(*pos)++] != 0;
  return true;
}

void PutStatus(std::string* dst, const Status& status) {
  dst->push_back(static_cast<char>(status.code()));
  PutString(dst, status.message());
}

bool GetStatus(std::string_view src, size_t* pos, Status* out) {
  if (*pos >= src.size()) return false;
  const uint8_t code = static_cast<uint8_t>(src[(*pos)++]);
  std::string message;
  if (!GetString(src, pos, &message)) return false;
  if (code == 0) {
    *out = Status::OK();
    return true;
  }
  const uint8_t max_code = static_cast<uint8_t>(StatusCode::kUnavailable);
  const StatusCode sc = code <= max_code ? static_cast<StatusCode>(code)
                                         : StatusCode::kInternal;
  *out = Status::FromCode(sc, std::move(message));
  return true;
}

void PutInt64Vector(std::string* dst, const std::vector<int64_t>& v) {
  PutVarint64(dst, v.size());
  for (int64_t x : v) PutVarintSigned(dst, x);
}

bool GetInt64Vector(std::string_view src, size_t* pos,
                    std::vector<int64_t>* out) {
  uint64_t n = 0;
  if (!GetVarint64(src, pos, &n)) return false;
  // Each element costs at least one byte, bounding a forged count.
  if (n > src.size() - *pos) return false;
  out->clear();
  // Cap the up-front reserve: n is byte-bounded but one wire byte maps to
  // eight allocated bytes, so let large vectors grow as bytes decode.
  out->reserve(static_cast<size_t>(std::min<uint64_t>(n, 4096)));
  for (uint64_t i = 0; i < n; ++i) {
    int64_t x;
    if (!GetVarintSigned(src, pos, &x)) return false;
    out->push_back(x);
  }
  return true;
}

void PutBoxTable(std::string* dst, const BoxTable& table) {
  PutVarint64(dst, static_cast<uint64_t>(table.ndim()));
  PutVarint64(dst, static_cast<uint64_t>(table.num_boxes()));
  for (int64_t b = 0; b < table.num_boxes(); ++b) {
    for (const Interval& iv : table.Box(b)) {
      PutVarintSigned(dst, iv.lo);
      PutVarintSigned(dst, iv.hi);
    }
  }
}

bool GetBoxTable(std::string_view src, size_t* pos, BoxTable* out) {
  uint64_t ndim = 0, boxes = 0;
  if (!GetVarint64(src, pos, &ndim)) return false;
  if (ndim > kMaxWireNdim) return false;
  if (!GetVarint64(src, pos, &boxes)) return false;
  // Two varints per interval, one byte minimum each. A 0-dim table never
  // carries boxes (num_boxes() is defined as 0 then), so a nonzero count
  // with ndim==0 is forged — without this check it would spin the decode
  // loop ~2^64 times on zero-byte boxes.
  if (ndim == 0) {
    if (boxes > 0) return false;
  } else if (boxes > (src.size() - *pos) / (2 * ndim)) {
    return false;
  }
  *out = BoxTable(static_cast<int>(ndim));
  std::vector<Interval> box(static_cast<size_t>(ndim));
  for (uint64_t b = 0; b < boxes; ++b) {
    for (uint64_t d = 0; d < ndim; ++d) {
      if (!GetVarintSigned(src, pos, &box[d].lo)) return false;
      if (!GetVarintSigned(src, pos, &box[d].hi)) return false;
    }
    out->AddBox(box);
  }
  return true;
}

void PutLineageRelation(std::string* dst, const LineageRelation& rel) {
  PutVarint64(dst, static_cast<uint64_t>(rel.out_ndim()));
  PutVarint64(dst, static_cast<uint64_t>(rel.in_ndim()));
  PutInt64Vector(dst, rel.out_shape());
  PutInt64Vector(dst, rel.in_shape());
  PutVarint64(dst, static_cast<uint64_t>(rel.num_rows()));
  for (int64_t x : rel.flat()) PutVarintSigned(dst, x);
}

bool GetLineageRelation(std::string_view src, size_t* pos,
                        LineageRelation* out) {
  uint64_t out_ndim = 0, in_ndim = 0;
  if (!GetVarint64(src, pos, &out_ndim)) return false;
  if (!GetVarint64(src, pos, &in_ndim)) return false;
  if (out_ndim > kMaxWireNdim || in_ndim > kMaxWireNdim) return false;
  std::vector<int64_t> out_shape, in_shape;
  if (!GetInt64Vector(src, pos, &out_shape)) return false;
  if (!GetInt64Vector(src, pos, &in_shape)) return false;
  if (out_shape.size() != out_ndim || in_shape.size() != in_ndim) return false;
  uint64_t rows = 0;
  if (!GetVarint64(src, pos, &rows)) return false;
  const uint64_t arity = out_ndim + in_ndim;
  // An arity-0 relation never carries rows (num_rows() is defined as 0
  // then); a nonzero forged count would otherwise spin on zero-byte rows.
  if (arity == 0) {
    if (rows > 0) return false;
  } else if (rows > (src.size() - *pos) / arity) {
    return false;
  }
  *out = LineageRelation(static_cast<int>(out_ndim), static_cast<int>(in_ndim));
  out->set_shapes(std::move(out_shape), std::move(in_shape));
  // `rows` is bounded by payload bytes, but reserving it all up front
  // still multiplies attacker bytes by sizeof(int64_t)*arity; let growth
  // track what actually decodes instead.
  out->Reserve(static_cast<int64_t>(std::min<uint64_t>(rows, 4096)));
  std::vector<int64_t> tuple(static_cast<size_t>(arity));
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t i = 0; i < arity; ++i) {
      if (!GetVarintSigned(src, pos, &tuple[i])) return false;
    }
    out->AddTuple(tuple);
  }
  return true;
}

void PutQueryOptions(std::string* dst, const QueryOptions& options) {
  PutBool(dst, options.merge_between_hops);
  PutVarint64(dst, static_cast<uint64_t>(std::max(1, options.num_threads)));
  dst->push_back(static_cast<char>(options.join_path));
  PutBool(dst, options.profile);
}

bool GetQueryOptions(std::string_view src, size_t* pos, QueryOptions* out) {
  *out = QueryOptions();
  if (!GetBool(src, pos, &out->merge_between_hops)) return false;
  uint64_t threads = 0;
  if (!GetVarint64(src, pos, &threads)) return false;
  if (threads == 0 || threads > 1024) return false;
  out->num_threads = static_cast<int>(threads);
  if (*pos >= src.size()) return false;
  const uint8_t path = static_cast<uint8_t>(src[(*pos)++]);
  if (path > static_cast<uint8_t>(JoinPath::kFullScan)) return false;
  out->join_path = static_cast<JoinPath>(path);
  return GetBool(src, pos, &out->profile);
}

}  // namespace net
}  // namespace dslog
