// Message structs of the lineage-service protocol: the typed payloads that
// travel inside wire.h frames. Every request struct pairs with a response
// struct (or an empty-payload Ok); kError / kOverloaded frames carry an
// encoded Status instead.
//
// Decode() is strict: it must consume the payload exactly — trailing bytes
// fail, so a frame whose opcode and payload disagree is a typed protocol
// error rather than silently half-parsed.

#ifndef DSLOG_NET_PROTOCOL_H_
#define DSLOG_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "query/box.h"
#include "query/query_engine.h"
#include "storage/dslog.h"
#include "storage/signatures.h"

namespace dslog {
namespace net {

/// kHello — must be the first frame of a session.
struct HelloRequest {
  uint32_t magic = kMagic;
  uint32_t version = kProtocolVersion;
  std::string client_name;

  std::string Encode() const;
  static bool Decode(std::string_view payload, HelloRequest* out);
};

/// kHelloOk.
struct HelloResponse {
  uint32_t version = kProtocolVersion;
  std::string server_name;
  int64_t max_frame_bytes = kDefaultMaxFrameBytes;

  std::string Encode() const;
  static bool Decode(std::string_view payload, HelloResponse* out);
};

/// kOpenStore — binds the session to one tenant store namespace. Response
/// is an empty kOpenStoreOk. Rejected while the session holds staged
/// (undrained) ingest.
struct OpenStoreRequest {
  std::string store;
  /// Create the namespace if absent (subject to the server's
  /// allow_create_store policy).
  bool create = true;

  std::string Encode() const;
  static bool Decode(std::string_view payload, OpenStoreRequest* out);
};

/// kDefineArray — response is an empty kDefineArrayOk.
struct DefineArrayRequest {
  std::string name;
  std::vector<int64_t> shape;

  std::string Encode() const;
  static bool Decode(std::string_view payload, DefineArrayRequest* out);
};

/// kReserveIds — the netplay-style id-block reservation: the client takes a
/// block of operation ids in one round trip and assigns them locally while
/// batching, instead of paying a round trip per operation.
struct ReserveIdsRequest {
  uint64_t count = 0;

  std::string Encode() const;
  static bool Decode(std::string_view payload, ReserveIdsRequest* out);
};

/// kReserveIdsOk — ids [base, base + count) now belong to the caller.
struct ReserveIdsResponse {
  uint64_t base = 0;
  uint64_t count = 0;

  std::string Encode() const;
  static bool Decode(std::string_view payload, ReserveIdsResponse* out);
};

/// One operation inside an ingest data block: a reserved id plus the full
/// registration (captured lineage travels on the wire).
struct WireOperation {
  uint64_t op_id = 0;
  OperationRegistration reg;
};

/// Appends one WireOperation encoding to `dst` — exposed separately so the
/// client's IngestHandle can accrete a data block op-by-op without
/// re-encoding the batch at ship time.
void AppendWireOperation(std::string* dst, uint64_t op_id,
                         const OperationRegistration& reg);
bool GetWireOperation(std::string_view src, size_t* pos, WireOperation* out);

/// kIngestBatch — ships one data block of operations, staged server-side
/// in order (session-owned StagedIngest; nothing commits until kDrain).
/// On a mid-batch staging error the earlier operations of the block remain
/// staged; the error response tells the client which op failed.
struct IngestBatchRequest {
  std::vector<WireOperation> ops;

  std::string Encode() const;
  static bool Decode(std::string_view payload, IngestBatchRequest* out);
};

/// kIngestBatchOk.
struct IngestBatchResponse {
  /// Total operations staged on the session (across all batches) and not
  /// yet drained.
  int64_t staged = 0;

  std::string Encode() const;
  static bool Decode(std::string_view payload, IngestBatchResponse* out);
};

/// kDrainOk — one outcome per staged operation, in Add() order.
struct DrainResponse {
  std::vector<ReuseOutcome> outcomes;

  std::string Encode() const;
  static bool Decode(std::string_view payload, DrainResponse* out);
};

/// kQuery — a prov_query over the session's open store.
struct QueryRequest {
  std::vector<std::string> path;
  BoxTable query;
  QueryOptions options;

  std::string Encode() const;
  static bool Decode(std::string_view payload, QueryRequest* out);
};

/// kQueryOk.
struct QueryResponse {
  BoxTable result;
  /// QueryProfile::ToJson() when the request set options.profile; empty
  /// otherwise.
  std::string profile_json;

  std::string Encode() const;
  static bool Decode(std::string_view payload, QueryResponse* out);
};

/// kStatsOk — server + metrics-registry snapshot as one JSON object.
struct StatsResponse {
  std::string json;

  std::string Encode() const;
  static bool Decode(std::string_view payload, StatsResponse* out);
};

/// Builds the payload of a kError / kOverloaded frame.
std::string EncodeStatusPayload(const Status& status);
/// Decodes one; a malformed payload yields an Internal status (the caller
/// still learns the request failed).
Status DecodeStatusPayload(std::string_view payload);

}  // namespace net
}  // namespace dslog

#endif  // DSLOG_NET_PROTOCOL_H_
