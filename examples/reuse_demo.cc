// Lineage reuse (§VI): the same featurization is applied to a training
// array and then a test array of a *different* shape. After two captured
// calls promote the gen_sig mapping, the third call registers lineage with
// no capture at all — DSLog reshapes the stored compressed table to the new
// dimensions (index reshaping, Fig 6).

#include <cstdio>

#include "array/ndarray.h"
#include "array/op_registry.h"
#include "common/random.h"
#include "storage/dslog.h"

using namespace dslog;

namespace {

// Registers mean(features, axis=1) on an arbitrary (rows x dims) array.
ReuseOutcome RegisterFeaturize(DSLog* log, const std::string& in_name,
                               const std::string& out_name, int64_t rows,
                               int64_t dims, bool provide_capture, Rng* rng) {
  DSLOG_CHECK(log->DefineArray(in_name, {rows, dims}).ok());
  DSLOG_CHECK(log->DefineArray(out_name, {rows}).ok());
  OperationRegistration reg;
  reg.op_name = "mean";
  reg.in_arrs = {in_name};
  reg.out_arr = out_name;
  reg.args.SetInt("axis", 1);
  if (provide_capture) {
    NDArray x = NDArray::Random({rows, dims}, rng);
    const ArrayOp* op = OpRegistry::Global().Find("mean");
    NDArray out = op->Apply({&x}, reg.args).ValueOrDie();
    reg.captured = {std::move(op->Capture({&x}, out, reg.args).ValueOrDie()[0])};
    reg.content_hash = x.ContentHash();
  }
  auto outcome = log->RegisterOperation(std::move(reg));
  DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  return outcome.ValueOrDie();
}

}  // namespace

int main() {
  DSLog log;
  Rng rng(3);

  std::printf("call 1: featurize train batch (1000 x 16), capture enabled\n");
  RegisterFeaturize(&log, "train0", "feat0", 1000, 16, true, &rng);

  std::printf("call 2: different shape (600 x 16) — verifies and promotes\n");
  ReuseOutcome o2 = RegisterFeaturize(&log, "train1", "feat1", 600, 16, true, &rng);
  std::printf("        gen_sig hit: %s\n", o2.gen_hit ? "yes" : "no");

  std::printf("call 3: test batch (250 x 16), NO capture provided\n");
  ReuseOutcome o3 = RegisterFeaturize(&log, "test", "feat_test", 250, 16,
                                      /*provide_capture=*/false, &rng);
  std::printf("        lineage served from the reuse index: %s\n",
              o3.dim_hit || o3.gen_hit ? "yes" : "no");

  // The served lineage is immediately queryable.
  BoxTable q = BoxTable::FromCells(1, {249});
  BoxTable sources = log.ProvQuery({"feat_test", "test"}, q).ValueOrDie();
  std::printf("\nbackward query feat_test[249] -> test cells:\n%s",
              sources.DebugString().c_str());

  const ReuseStats& stats = log.reuse_stats();
  std::printf("\nreuse stats: dim promotions=%lld, gen promotions=%lld, "
              "mispredictions=%lld\n",
              static_cast<long long>(stats.dim_promotions),
              static_cast<long long>(stats.gen_promotions),
              static_cast<long long>(stats.mispredictions));
  return 0;
}
