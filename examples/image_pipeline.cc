// Image / model-debugging scenario (the Fig 8A workflow): a surveillance
// frame runs through resize -> luminosity -> rotate -> flip -> LIME over a
// detector; DSLog then answers "which original pixels influenced the
// detection?" (backward) and "where does this pixel end up?" (forward)
// across the whole pipeline.

#include <cstdio>

#include "common/strings.h"
#include "provrc/provrc.h"
#include "storage/dslog.h"
#include "workloads/workflows.h"

using namespace dslog;

int main() {
  auto wfr = BuildImageWorkflow(96, 96, /*seed=*/7);
  DSLOG_CHECK(wfr.ok()) << wfr.status().ToString();
  const Workflow& wf = wfr.value();

  DSLog log;
  for (size_t i = 0; i < wf.array_names.size(); ++i)
    DSLOG_CHECK(log.DefineArray(wf.array_names[i], wf.shapes[i]).ok());
  for (size_t i = 0; i < wf.steps.size(); ++i) {
    OperationRegistration reg;
    reg.op_name = wf.steps[i].op_name;
    reg.in_arrs = {wf.array_names[i]};
    reg.out_arr = wf.array_names[i + 1];
    reg.captured = {wf.steps[i].relation};
    DSLOG_CHECK(log.RegisterOperation(std::move(reg)).ok());
    std::printf("step %zu: %-12s lineage rows=%lld\n", i + 1,
                wf.steps[i].op_name.c_str(),
                static_cast<long long>(wf.steps[i].relation.num_rows()));
  }
  std::printf("total stored lineage: %s (ProvRC-GZip)\n\n",
              HumanBytes(log.StorageFootprintBytes()).c_str());

  // Backward: which original pixels contributed to the detection's
  // confidence cell (index 4)?
  std::vector<std::string> back_path(wf.array_names.rbegin(),
                                     wf.array_names.rend());
  BoxTable qdet = BoxTable::FromCells(1, {4});
  BoxTable pixels = log.ProvQuery(back_path, qdet).ValueOrDie();
  std::printf("backward query (detection confidence -> source pixels):\n");
  std::printf("  %lld pixel box(es), %lld distinct pixels\n",
              static_cast<long long>(pixels.num_boxes()),
              static_cast<long long>(pixels.NumDistinctCells()));

  // Forward: does the top-left image patch reach the detection at all?
  std::vector<int64_t> patch;
  for (int64_t y = 0; y < 8; ++y)
    for (int64_t x = 0; x < 8; ++x) {
      patch.push_back(y);
      patch.push_back(x);
    }
  BoxTable qpatch = BoxTable::FromCells(2, patch);
  BoxTable touched =
      log.ProvQuery(std::vector<std::string>(wf.array_names.begin(),
                                             wf.array_names.end()),
                    qpatch)
          .ValueOrDie();
  std::printf("forward query (8x8 source patch -> detection cells):\n");
  std::printf("  influences %lld of 6 detection cells\n",
              static_cast<long long>(touched.NumDistinctCells()));
  return 0;
}
