// Quickstart: the paper's running example end-to-end.
//
//   A = [[0,3],[1,5],[2,1]]          (3x2 array)
//   B = sum(A, axis=1)               (3-cell array)
//
// Capture the cell-level lineage, ingest it into DSLog (ProvRC-compressed),
// and ask forward ("which outputs does A[1][1] touch?") and backward
// ("which inputs produced B[0]?") queries — all without decompressing.

#include <cstdio>

#include "array/ndarray.h"
#include "array/op_registry.h"
#include "provrc/provrc.h"
#include "storage/dslog.h"

using namespace dslog;

int main() {
  // --- run the operation and capture lineage -----------------------------
  NDArray a = NDArray::FromValues({3, 2}, {0, 3, 1, 5, 2, 1});
  const ArrayOp* sum = OpRegistry::Global().Find("sum");
  OpArgs args;
  args.SetInt("axis", 1);
  NDArray b = sum->Apply({&a}, args).ValueOrDie();
  LineageRelation lineage =
      std::move(sum->Capture({&a}, b, args).ValueOrDie()[0]);

  std::printf("B = sum(A, axis=1) = [%g, %g, %g]\n", b[0], b[1], b[2]);
  std::printf("captured lineage: %lld contribution pairs\n",
              static_cast<long long>(lineage.num_rows()));

  // --- peek at the compressed representation ------------------------------
  CompressedTable compressed = ProvRcCompress(lineage);
  std::printf("\nProvRC compressed to %lld row(s):\n%s\n",
              static_cast<long long>(compressed.num_rows()),
              compressed.DebugString().c_str());

  // --- ingest into DSLog ---------------------------------------------------
  DSLog log;
  DSLOG_CHECK(log.DefineArray("A", {3, 2}).ok());
  DSLOG_CHECK(log.DefineArray("B", {3}).ok());
  OperationRegistration reg;
  reg.op_name = "sum";
  reg.in_arrs = {"A"};
  reg.out_arr = "B";
  reg.captured = {std::move(lineage)};
  reg.args = args;
  reg.content_hash = a.ContentHash();
  DSLOG_CHECK(log.RegisterOperation(std::move(reg)).ok());

  // --- forward query: A[1][1] -> B ----------------------------------------
  BoxTable qa = BoxTable::FromCells(2, {1, 1});
  BoxTable fwd = log.ProvQuery({"A", "B"}, qa).ValueOrDie();
  std::printf("forward  prov_query([A,B], {(1,1)}):\n%s",
              fwd.DebugString().c_str());

  // --- backward query: B[0] -> A -------------------------------------------
  BoxTable qb = BoxTable::FromCells(1, {0});
  BoxTable bwd = log.ProvQuery({"B", "A"}, qb).ValueOrDie();
  std::printf("backward prov_query([B,A], {0}):\n%s",
              bwd.DebugString().c_str());

  std::printf("\nstored lineage footprint: %lld bytes (ProvRC-GZip)\n",
              static_cast<long long>(log.StorageFootprintBytes()));
  return 0;
}
