// dslog_client_demo: the quickstart example over the wire. Connects to a
// running dslog_server, opens a tenant store, ingests the paper's running
// example (B = sum(A, axis=1)) through the batching IngestHandle, and runs
// the forward and backward queries remotely. Exits 0 only when both
// answers cover the expected cells — the CI server-smoke job drives this
// against a freshly started server.
//
//   dslog_client_demo [--host 127.0.0.1] [--port 7433]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "array/ndarray.h"
#include "array/op_registry.h"
#include "net/client.h"

using namespace dslog;

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7433;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--host H] [--port P]\n", argv[0]);
      return 2;
    }
  }

  auto connected = net::DslogClient::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::DslogClient> client = std::move(connected).value();
  std::printf("connected to %s (max frame %lld bytes)\n",
              client->server_hello().server_name.c_str(),
              static_cast<long long>(client->server_hello().max_frame_bytes));

  auto die = [](const char* what, const Status& st) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  };

  Status st = client->OpenStore("demo");
  if (!st.ok()) die("OpenStore", st);
  st = client->DefineArray("A", {3, 2});
  if (!st.ok()) die("DefineArray(A)", st);
  st = client->DefineArray("B", {3});
  if (!st.ok()) die("DefineArray(B)", st);

  // Run sum locally, capture lineage, ship it through the handle.
  NDArray a = NDArray::FromValues({3, 2}, {0, 3, 1, 5, 2, 1});
  const ArrayOp* sum = OpRegistry::Global().Find("sum");
  OpArgs args;
  args.SetInt("axis", 1);
  NDArray b = sum->Apply({&a}, args).ValueOrDie();
  OperationRegistration reg;
  reg.op_name = "sum";
  reg.in_arrs = {"A"};
  reg.out_arr = "B";
  reg.captured = sum->Capture({&a}, b, args).ValueOrDie();
  reg.args = args;
  reg.content_hash = a.ContentHash();

  net::IngestHandle handle(client.get());
  auto added = handle.Add(reg);
  if (!added.ok()) die("IngestHandle::Add", added.status());
  auto drained = handle.Drain();
  if (!drained.ok()) die("Drain", drained.status());
  std::printf("ingested op %llu, drained %zu outcome(s)\n",
              static_cast<unsigned long long>(added.value()),
              drained.value().size());

  auto fwd = client->Query({"A", "B"}, BoxTable::FromCells(2, {1, 1}));
  if (!fwd.ok()) die("forward query", fwd.status());
  auto bwd = client->Query({"B", "A"}, BoxTable::FromCells(1, {0}));
  if (!bwd.ok()) die("backward query", bwd.status());
  std::printf("forward  -> %lld cell(s)\nbackward -> %lld cell(s)\n",
              static_cast<long long>(fwd.value().NumDistinctCells()),
              static_cast<long long>(bwd.value().NumDistinctCells()));
  // A[1][1] feeds B[1] only; B[0] came from A[0][0] and A[0][1].
  if (fwd.value().NumDistinctCells() != 1 ||
      bwd.value().NumDistinctCells() != 2) {
    std::fprintf(stderr, "unexpected query answers\n");
    return 1;
  }

  st = client->Bye();
  if (!st.ok()) die("Bye", st);
  std::printf("round trip ok\n");
  return 0;
}
