// dslog_inspect: dumps the structure of a LogStore file — header/version,
// array catalog, per-segment edge index (layout version, row count,
// bytes/row, offset, size, checksum verification), and footer totals.
// Mixed-version stores (v1 ProvRC-GZip segments next to v2 columnar ones)
// show per-layout subtotals, so "which edges still pay a gunzip" is
// answerable at a glance. Row counts ride in v2 footers; for segments
// written before that field the tool decodes the segment once to count
// (marked with '*').
//
//   ./dslog_inspect <log.dsl>
//
// With no argument, builds a small mixed-layout demo catalog in the
// scratch dir and inspects that, so the example is runnable stand-alone.
//
// Traced-query mode runs one profiled lineage query against the store and
// dumps both the QueryProfile (per-hop rows/paths/timings) and a Chrome
// trace_event JSON file (load it at chrome://tracing or ui.perfetto.dev):
//
//   ./dslog_inspect --trace <log.dsl> [--query A B C ...] [--trace-out f.json]
//
// --query names the array path (default: one backward hop over the first
// segment); the query box covers the whole first array on the path.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/io.h"
#include "common/strings.h"
#include "common/trace.h"
#include "lineage/lineage_relation.h"
#include "query/box.h"
#include "storage/dslog.h"
#include "storage/logstore.h"

using namespace dslog;

namespace {

std::string BuildDemoStore() {
  DSLog log;
  const int64_t n = 64;
  (void)log.DefineArray("a0", {n});
  auto add_step = [&](int i) {
    std::string in = "a" + std::to_string(i);
    std::string out = "a" + std::to_string(i + 1);
    (void)log.DefineArray(out, {n});
    LineageRelation rel(1, 1);
    rel.set_shapes({n}, {n});
    for (int64_t c = 0; c < n; ++c) {
      const int64_t tuple[2] = {c, (c + i) % n};
      rel.AddTuple(tuple);
    }
    OperationRegistration reg;
    reg.op_name = "demo_step_" + std::to_string(i);
    reg.in_arrs = {in};
    reg.out_arr = out;
    reg.captured.push_back(std::move(rel));
    reg.reuse = false;
    auto outcome = log.RegisterOperation(std::move(reg));
    DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  };
  std::string path = ScratchDir() + "/inspect_demo.dsl";
  // First half as a gzip store, second half appended columnar — a mixed
  // store, so the demo output shows both layouts.
  for (int i = 0; i < 3; ++i) add_step(i);
  Status st = log.SaveLogStore(path, SegmentLayout::kProvRcGzip);
  DSLOG_CHECK(st.ok()) << st.ToString();
  for (int i = 3; i < 6; ++i) add_step(i);
  st = log.AppendLogStore(path);
  DSLOG_CHECK(st.ok()) << st.ToString();
  return path;
}

/// Row count of a segment: from the footer when recorded, otherwise by
/// decoding the segment once (v1 footers predate the field).
int64_t SegmentRows(const LogStore& store, size_t id, bool* decoded) {
  const LogStore::SegmentInfo& seg = store.segments()[id];
  *decoded = false;
  if (seg.row_count >= 0) return seg.row_count;
  auto table = store.Table(id);
  if (!table.ok()) return -1;
  *decoded = true;
  return table.value()->num_rows();
}

/// --trace mode: one profiled query through DSLog::OpenInSitu, profile
/// dump to stdout, Chrome trace_event JSON to `trace_out`.
int RunTracedQuery(const std::string& path,
                   std::vector<std::string> query_path,
                   const std::string& trace_out) {
  auto opened = DSLog::OpenInSitu(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open %s in situ: %s\n", path.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  DSLog log = std::move(opened).value();
  if (query_path.empty()) {
    // Default: one backward hop over the store's first segment.
    auto store = log.log_store();
    if (store == nullptr || store->segments().empty()) {
      std::fprintf(stderr, "store has no segments; pass --query A B ...\n");
      return 1;
    }
    const LogStore::SegmentInfo& seg = store->segments().front();
    query_path = {seg.out_arr, seg.in_arr};
  }
  auto shape = log.ArrayShape(query_path.front());
  if (!shape.ok()) {
    std::fprintf(stderr, "unknown array %s: %s\n", query_path.front().c_str(),
                 shape.status().ToString().c_str());
    return 1;
  }
  std::vector<Interval> box;
  for (int64_t d : shape.value()) box.push_back({0, d - 1});

  QueryOptions options;
  options.profile = true;
  QueryProfile profile;
  auto result =
      log.ProvQuery(query_path, BoxTable::FromBox(std::move(box)), options,
                    &profile);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("traced query over %s:\n%s", path.c_str(),
              profile.ToText().c_str());
  Status st = trace::WriteJson(trace_out);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write trace: %s\n", st.ToString().c_str());
    return 3;
  }
  std::printf("\nwrote %lld trace event(s) to %s (open in chrome://tracing)\n",
              static_cast<long long>(trace::EventCount()), trace_out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool traced = false;
  std::string trace_out = "trace.json";
  std::string path;
  std::vector<std::string> query_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      traced = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--query") == 0) {
      while (i + 1 < argc && argv[i + 1][0] != '-') query_path.push_back(argv[++i]);
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    path = BuildDemoStore();
    std::printf("(no file given; inspecting demo store %s)\n\n", path.c_str());
  }
  if (traced) return RunTracedQuery(path, std::move(query_path), trace_out);

  auto opened = LogStore::Open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const LogStore& store = *opened.value();

  std::printf("LogStore %s\n", path.c_str());
  std::printf("  format version : %u\n", store.format_version());
  std::printf("  file size      : %s\n",
              HumanBytes(store.file_size()).c_str());
  std::printf("  backed by      : %s\n",
              store.mapped() ? "mmap" : "heap read fallback");
  std::printf("  arrays         : %zu\n", store.arrays().size());
  std::printf("  segments       : %zu\n", store.segments().size());
  if (store.edge_index_kind() == LogStore::EdgeIndexKind::kPhf)
    std::printf("  edge index     : perfect-hash (%.2f bits/key, %u-bit "
                "fingerprints)\n",
                store.index_bits_per_key(), store.index_fingerprint_bits());
  else
    std::printf("  edge index     : lazy name map (no on-disk index)\n");
  std::printf("  predictor blob : %s\n\n",
              HumanBytes(static_cast<int64_t>(store.predictor_state().size()))
                  .c_str());

  std::printf("arrays:\n");
  for (const auto& [name, shape] : store.arrays())
    std::printf("  %-24s [%s]\n", name.c_str(), JoinInts(shape, ", ").c_str());

  std::printf("\nsegments (edge index):\n");
  std::printf("  %4s %-14s %-14s %-14s %-9s %9s %10s %9s %9s\n", "id",
              "in_arr", "out_arr", "op", "layout", "rows", "bytes", "B/row",
              "checksum");
  int64_t total_bytes = 0;
  int64_t layout_bytes[2] = {0, 0};
  int layout_count[2] = {0, 0};
  int corrupt = 0;
  for (size_t i = 0; i < store.segments().size(); ++i) {
    const LogStore::SegmentInfo& seg = store.segments()[i];
    const bool ok = Hash64(store.SegmentView(i)) == seg.checksum;
    if (!ok) ++corrupt;
    total_bytes += static_cast<int64_t>(seg.length);
    const int slot = seg.layout == SegmentLayout::kColumnar ? 1 : 0;
    layout_bytes[slot] += static_cast<int64_t>(seg.length);
    ++layout_count[slot];
    bool decoded = false;
    const int64_t rows = ok ? SegmentRows(store, i, &decoded) : -1;
    char rows_text[32];
    if (rows >= 0)
      std::snprintf(rows_text, sizeof rows_text, "%lld%s",
                    static_cast<long long>(rows), decoded ? "*" : "");
    else
      std::snprintf(rows_text, sizeof rows_text, "?");
    char per_row[32];
    if (rows > 0)
      std::snprintf(per_row, sizeof per_row, "%.1f",
                    static_cast<double>(seg.length) / static_cast<double>(rows));
    else
      std::snprintf(per_row, sizeof per_row, "-");
    std::printf("  %4zu %-14s %-14s %-14s %-9s %9s %10llu %9s %9s\n", i,
                seg.in_arr.c_str(), seg.out_arr.c_str(), seg.op_name.c_str(),
                slot == 1 ? "v2-col" : "v1-gzip", rows_text,
                static_cast<unsigned long long>(seg.length), per_row,
                ok ? "ok" : "MISMATCH");
  }
  std::printf("\ntotals: %s of segments (%d v1-gzip: %s, %d v2-columnar: %s)",
              HumanBytes(total_bytes).c_str(), layout_count[0],
              HumanBytes(layout_bytes[0]).c_str(), layout_count[1],
              HumanBytes(layout_bytes[1]).c_str());
  if (corrupt > 0) {
    std::printf(", %d CORRUPT segment(s)\n", corrupt);
    return 2;
  }
  std::printf(", all checksums ok\n");
  return 0;
}
