// dslog_inspect: dumps the structure of a LogStore file — header/version,
// array catalog, per-segment edge index (offset, compressed size, checksum
// verification), and footer totals — without decompressing any segment.
//
//   ./dslog_inspect <log.dsl>
//
// With no argument, builds a small demo catalog in the scratch dir and
// inspects that, so the example is runnable stand-alone.

#include <cstdio>
#include <string>

#include "common/hash.h"
#include "common/io.h"
#include "common/strings.h"
#include "lineage/lineage_relation.h"
#include "storage/dslog.h"
#include "storage/logstore.h"

using namespace dslog;

namespace {

std::string BuildDemoStore() {
  DSLog log;
  const int64_t n = 64;
  (void)log.DefineArray("a0", {n});
  for (int i = 0; i < 6; ++i) {
    std::string in = "a" + std::to_string(i);
    std::string out = "a" + std::to_string(i + 1);
    (void)log.DefineArray(out, {n});
    LineageRelation rel(1, 1);
    rel.set_shapes({n}, {n});
    for (int64_t c = 0; c < n; ++c) {
      const int64_t tuple[2] = {c, (c + i) % n};
      rel.AddTuple(tuple);
    }
    OperationRegistration reg;
    reg.op_name = "demo_step_" + std::to_string(i);
    reg.in_arrs = {in};
    reg.out_arr = out;
    reg.captured.push_back(std::move(rel));
    reg.reuse = false;
    auto outcome = log.RegisterOperation(std::move(reg));
    DSLOG_CHECK(outcome.ok()) << outcome.status().ToString();
  }
  std::string path = ScratchDir() + "/inspect_demo.dsl";
  Status st = log.SaveLogStore(path);
  DSLOG_CHECK(st.ok()) << st.ToString();
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = BuildDemoStore();
    std::printf("(no file given; inspecting demo store %s)\n\n", path.c_str());
  }

  auto opened = LogStore::Open(path);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const LogStore& store = *opened.value();

  std::printf("LogStore %s\n", path.c_str());
  std::printf("  format version : %u\n", store.format_version());
  std::printf("  file size      : %s\n",
              HumanBytes(store.file_size()).c_str());
  std::printf("  backed by      : %s\n",
              store.mapped() ? "mmap" : "heap read fallback");
  std::printf("  arrays         : %zu\n", store.arrays().size());
  std::printf("  segments       : %zu\n", store.segments().size());
  std::printf("  predictor blob : %s\n\n",
              HumanBytes(static_cast<int64_t>(store.predictor_state().size()))
                  .c_str());

  std::printf("arrays:\n");
  for (const auto& [name, shape] : store.arrays())
    std::printf("  %-24s [%s]\n", name.c_str(), JoinInts(shape, ", ").c_str());

  std::printf("\nsegments (edge index):\n");
  std::printf("  %4s %-18s %-18s %-16s %10s %10s %9s\n", "id", "in_arr",
              "out_arr", "op", "offset", "bytes", "checksum");
  int64_t total_bytes = 0;
  int corrupt = 0;
  for (size_t i = 0; i < store.segments().size(); ++i) {
    const LogStore::SegmentInfo& seg = store.segments()[i];
    const bool ok = Hash64(store.SegmentView(i)) == seg.checksum;
    if (!ok) ++corrupt;
    total_bytes += static_cast<int64_t>(seg.length);
    std::printf("  %4zu %-18s %-18s %-16s %10llu %10llu %9s\n", i,
                seg.in_arr.c_str(), seg.out_arr.c_str(), seg.op_name.c_str(),
                static_cast<unsigned long long>(seg.offset),
                static_cast<unsigned long long>(seg.length),
                ok ? "ok" : "MISMATCH");
  }
  std::printf("\ntotals: %s of compressed segments",
              HumanBytes(total_bytes).c_str());
  if (corrupt > 0) {
    std::printf(", %d CORRUPT segment(s)\n", corrupt);
    return 2;
  }
  std::printf(", all checksums ok\n");
  return 0;
}
