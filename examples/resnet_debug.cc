// Model-debugging scenario (the Fig 8C workflow): trace activations through
// the seven steps of a ResNet block. Demonstrates the materialized forward
// representation (DSLogOptions::materialize_forward, paper §IV.C): when a
// catalog mostly serves forward queries, DSLog stores the inverse table
// with absolute input attributes next to the backward one.

#include <cstdio>

#include "common/strings.h"
#include "common/timer.h"
#include "storage/dslog.h"
#include "workloads/workflows.h"

using namespace dslog;

namespace {

DSLog BuildCatalog(const Workflow& wf, bool materialize_forward) {
  DSLogOptions options;
  options.materialize_forward = materialize_forward;
  DSLog log(options);
  for (size_t i = 0; i < wf.array_names.size(); ++i)
    DSLOG_CHECK(log.DefineArray(wf.array_names[i], wf.shapes[i]).ok());
  for (size_t i = 0; i < wf.steps.size(); ++i) {
    OperationRegistration reg;
    reg.op_name = wf.steps[i].op_name;
    reg.in_arrs = {wf.array_names[i]};
    reg.out_arr = wf.array_names[i + 1];
    reg.captured = {wf.steps[i].relation};
    DSLOG_CHECK(log.RegisterOperation(std::move(reg)).ok());
  }
  return log;
}

}  // namespace

int main() {
  auto wfr = BuildResNetWorkflow(64, 64, /*seed=*/21);
  DSLOG_CHECK(wfr.ok()) << wfr.status().ToString();
  const Workflow& wf = wfr.value();
  for (size_t i = 0; i < wf.steps.size(); ++i)
    std::printf("step %zu: %-10s lineage rows=%lld\n", i + 1,
                wf.steps[i].op_name.c_str(),
                static_cast<long long>(wf.steps[i].relation.num_rows()));

  DSLog backward_only = BuildCatalog(wf, /*materialize_forward=*/false);
  DSLog both = BuildCatalog(wf, /*materialize_forward=*/true);
  std::printf("\nstored lineage (backward rep only): %s\n",
              HumanBytes(backward_only.StorageFootprintBytes()).c_str());

  // Forward query: receptive-field expansion of one input pixel through
  // both 3x3 convolutions (the "which activations did this pixel touch"
  // debugging question).
  std::vector<std::string> fwd_path(wf.array_names.begin(),
                                    wf.array_names.end());
  BoxTable q = BoxTable::FromCells(2, {32, 32});

  WallTimer t1;
  BoxTable r1 = backward_only.ProvQuery(fwd_path, q).ValueOrDie();
  double direct_s = t1.ElapsedSeconds();
  WallTimer t2;
  BoxTable r2 = both.ProvQuery(fwd_path, q).ValueOrDie();
  double materialized_s = t2.ElapsedSeconds();

  std::printf("\nforward query pixel (32,32) -> final activations:\n");
  std::printf("  receptive field: %lld cells (expected 5x5 = 25)\n",
              static_cast<long long>(r1.NumDistinctCells()));
  std::printf("  direct join on backward rep: %.6f s\n", direct_s);
  std::printf("  materialized forward rep:    %.6f s\n", materialized_s);
  DSLOG_CHECK(r1.NumDistinctCells() == r2.NumDistinctCells())
      << "representations disagree";

  // Backward query: which input pixels can influence a border activation?
  std::vector<std::string> bwd_path(wf.array_names.rbegin(),
                                    wf.array_names.rend());
  BoxTable qb = BoxTable::FromCells(2, {0, 0});
  BoxTable sources = both.ProvQuery(bwd_path, qb).ValueOrDie();
  std::printf("\nbackward query activation (0,0) -> input pixels:\n");
  std::printf("  %lld source cells (corner receptive field: 3x3 = 9)\n",
              static_cast<long long>(sources.NumDistinctCells()));
  return 0;
}
