// End-to-end query observability demo: builds the Fig-8A image workflow,
// persists it as a columnar LogStore, reopens it in situ, and runs the
// backward "which pixels influenced the detection?" query twice with
// QueryOptions::profile set — a cold run (segments resolve from disk) and
// a warm run (decode-LRU hits). Prints each run's QueryProfile, the JSON
// form, a metrics-registry snapshot, and writes the collected trace spans
// as Chrome trace_event JSON (open at chrome://tracing or ui.perfetto.dev).
//
//   ./profile_demo [trace-out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "storage/dslog.h"
#include "workloads/workflows.h"

using namespace dslog;

int main(int argc, char** argv) {
  const std::string trace_out =
      argc > 1 ? argv[1] : ScratchDir() + "/profile_demo_trace.json";

  auto wfr = BuildImageWorkflow(96, 96, /*seed=*/7);
  DSLOG_CHECK(wfr.ok()) << wfr.status().ToString();
  const Workflow& wf = wfr.value();

  // Ingest + persist as a columnar (zero-copy) single-file store.
  const std::string store_path = ScratchDir() + "/profile_demo.dsl";
  {
    DSLog log;
    for (size_t i = 0; i < wf.array_names.size(); ++i)
      DSLOG_CHECK(log.DefineArray(wf.array_names[i], wf.shapes[i]).ok());
    for (size_t i = 0; i < wf.steps.size(); ++i) {
      OperationRegistration reg;
      reg.op_name = wf.steps[i].op_name;
      reg.in_arrs = {wf.array_names[i]};
      reg.out_arr = wf.array_names[i + 1];
      reg.captured = {wf.steps[i].relation};
      reg.reuse = false;
      DSLOG_CHECK(log.RegisterOperation(std::move(reg)).ok());
    }
    DSLOG_CHECK(log.SaveLogStore(store_path).ok());
  }

  auto opened = DSLog::OpenInSitu(store_path);
  DSLOG_CHECK(opened.ok()) << opened.status().ToString();
  DSLog log = std::move(opened).value();

  // Backward full-path query from the detection's confidence cell.
  std::vector<std::string> back_path(wf.array_names.rbegin(),
                                     wf.array_names.rend());
  const BoxTable query = BoxTable::FromCells(1, {4});

  QueryOptions options;
  options.profile = true;
  for (const char* run : {"cold", "warm"}) {
    QueryProfile profile;
    auto result = log.ProvQuery(back_path, query, options, &profile);
    DSLOG_CHECK(result.ok()) << result.status().ToString();
    std::printf("--- %s run (%lld result boxes) ---\n%s\n", run,
                static_cast<long long>(result.value().num_boxes()),
                profile.ToText().c_str());
    if (run[0] == 'w')
      std::printf("profile as JSON:\n%s\n\n", profile.ToJson().c_str());
  }

  std::printf("--- metrics registry snapshot ---\n%s\n",
              metrics::Registry::Global().Snapshot().ToText().c_str());

  Status st = trace::WriteJson(trace_out);
  if (st.ok()) {
    std::printf("wrote %lld trace event(s) to %s\n",
                static_cast<long long>(trace::EventCount()),
                trace_out.c_str());
  } else {
    // Build configured with -DDSLOG_TRACE=OFF: spans compile to nothing.
    std::printf("trace export unavailable: %s\n", st.ToString().c_str());
  }
  return 0;
}
