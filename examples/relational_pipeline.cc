// Relational pre-processing scenario (the Fig 8B workflow): IMDB-like
// tables flow through join -> NaN-column filter -> derived column ->
// one-hot -> constant shift; DSLog traces a processed cell back to the raw
// table and a raw cell forward to everything it influenced.

#include <cstdio>

#include "common/strings.h"
#include "storage/dslog.h"
#include "workloads/workflows.h"

using namespace dslog;

int main() {
  auto wfr = BuildRelationalWorkflow(/*basics_rows=*/5000,
                                     /*episode_rows=*/3000, /*seed=*/11);
  DSLOG_CHECK(wfr.ok()) << wfr.status().ToString();
  const Workflow& wf = wfr.value();

  DSLog log;
  for (size_t i = 0; i < wf.array_names.size(); ++i)
    DSLOG_CHECK(log.DefineArray(wf.array_names[i], wf.shapes[i]).ok());
  for (size_t i = 0; i < wf.steps.size(); ++i) {
    OperationRegistration reg;
    reg.op_name = wf.steps[i].op_name;
    reg.in_arrs = {wf.array_names[i]};
    reg.out_arr = wf.array_names[i + 1];
    reg.captured = {wf.steps[i].relation};
    DSLOG_CHECK(log.RegisterOperation(std::move(reg)).ok());
    std::printf("step %zu: %-18s table %s, lineage rows=%lld\n", i + 1,
                wf.steps[i].op_name.c_str(),
                ("(" + JoinInts(wf.shapes[i + 1], "x") + ")").c_str(),
                static_cast<long long>(wf.steps[i].relation.num_rows()));
  }
  std::printf("total stored lineage: %s (ProvRC-GZip)\n\n",
              HumanBytes(log.StorageFootprintBytes()).c_str());

  // Backward: where did the final table's cell (0, 3) come from?
  std::vector<std::string> back_path(wf.array_names.rbegin(),
                                     wf.array_names.rend());
  BoxTable q = BoxTable::FromCells(2, {0, 3});
  BoxTable sources = log.ProvQuery(back_path, q).ValueOrDie();
  std::printf("backward query (final cell (0,3) -> raw basics cells):\n%s",
              sources.DebugString(8).c_str());

  // Forward: what did the first raw row influence downstream?
  std::vector<int64_t> row0;
  for (int64_t c = 0; c < wf.shapes[0][1]; ++c) {
    row0.push_back(0);
    row0.push_back(c);
  }
  BoxTable qr = BoxTable::FromCells(2, row0);
  BoxTable influenced =
      log.ProvQuery(std::vector<std::string>(wf.array_names.begin(),
                                             wf.array_names.end()),
                    qr)
          .ValueOrDie();
  std::printf("\nforward query (raw basics row 0 -> final table):\n");
  std::printf("  %lld influenced cell(s) in the final table\n",
              static_cast<long long>(influenced.NumDistinctCells()));
  return 0;
}
